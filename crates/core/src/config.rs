//! Cell-level configuration.
//!
//! [`CellConfig`] combines the paper's model parameters
//! ([`ScenarioParams`]) with the simulation-level knobs the analysis
//! abstracts away: how many clients to actually instantiate, their
//! hotspot sizes and popularity skew, the random seed, the report
//! delivery mode (§9), and whether expensive safety checking is on.

use sw_capacity::{CoopConfig, ReplacementPolicy};
use sw_faults::FaultPlan;
use sw_query::QueryPlaneConfig;
use sw_sim::MasterSeed;
use sw_wireless::{DeliveryMode, EnergyModel};
use sw_workload::{Popularity, ScenarioParams};

/// How the cell tracks which units wake in which interval.
///
/// Both representations yield the identical awake set in the identical
/// (ascending-index) order — every random stream is consumed in the
/// same sequence — so the choice is purely a time/space trade, never a
/// results change. [`CellConfig::with_wake_mode`] forces one; the
/// default picks by the cell's mean sleep probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeMode {
    /// Dense scan of a per-client next-wake vector: O(n) per interval
    /// with a branch-predictable sequential pass. Fastest for
    /// workaholic-leaning cells, where most units wake most intervals
    /// and a heap would churn an entry per client per interval.
    Scan,
    /// Min-heap of `(wake_interval, client)` — the sleeper skip-list:
    /// O(awake · log n) per interval, never visiting sleepers. Wins
    /// when nearly the whole cell sleeps (s ≳ 0.95), which is exactly
    /// the paper's sleeper regime.
    Heap,
}

/// Which storage layout holds the client fleet's mutable state.
///
/// Both layouts simulate the identical model and produce bit-identical
/// reports (pinned by the equivalence suite); the choice is purely a
/// memory-layout/performance trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetBackend {
    /// One [`sw_client::MobileUnit`] struct per client: caches are
    /// per-client item tables, handlers are boxed trait objects. The
    /// fully general backend — required for the driver-constructed
    /// strategies (adaptive TS, quasi-delay, stateful), bounded caches,
    /// piggybacking, and mesh shards (whose units migrate as whole
    /// structs).
    Units,
    /// Struct-of-arrays: per-item cache timestamps, values, and
    /// validity bitmaps for *all* clients live in dense parallel
    /// vectors strided by the hotspot size (a client can only ever
    /// cache items it queries, and it only queries its hotspot), with
    /// per-client strategy state held in typed columns instead of
    /// boxed handlers. One report sweep is a cache-friendly linear
    /// scan, and memory scales with `clients × hotspot` instead of
    /// `clients × n_items` — the layout that makes 10⁵–10⁶-client
    /// cells tractable.
    Columnar,
}

/// Full configuration of one simulated cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// The paper's model parameters.
    pub params: ScenarioParams,
    /// Number of mobile units in the cell.
    pub n_clients: usize,
    /// Hotspot size per client.
    pub hotspot_size: usize,
    /// Popularity skew across clients' hotspots.
    pub popularity: Popularity,
    /// Master seed for all random streams.
    pub seed: MasterSeed,
    /// Report delivery mode (§9). Timing only; defaults to exact timer
    /// synchronization.
    pub delivery: DeliveryMode,
    /// Collect local-hit timestamps for uplink piggybacking (§8.1).
    pub piggyback_hits: bool,
    /// Optional per-client cache capacity (None = unbounded).
    pub cache_capacity: Option<usize>,
    /// Replacement policy for bounded caches. Ignored (and must stay at
    /// its default) when `cache_capacity` is `None` — an unbounded
    /// cache never evicts, so there is nothing for a policy to decide.
    pub replacement: ReplacementPolicy,
    /// Zipf exponent θ for skewed intra-hotspot query popularity.
    /// `None` — the default — keeps the paper's uniform hotspot draw
    /// and leaves every pre-existing run byte-identical; `Some(θ)`
    /// draws item picks from the dedicated
    /// `StreamId::ZipfQuery { index }` streams (arrival *times* still
    /// come from the untouched query streams). Standalone cells only.
    pub query_zipf: Option<f64>,
    /// Cooperative-miss configuration: a bounded client's fresh miss
    /// may be answered by a neighbor cell holding a verifiably fresh
    /// copy, charged at `b_coop` bits instead of an uplink exchange.
    /// `None` — the default — arms nothing. Requires a mesh backbone
    /// (neighbors only exist in a `CellGraph`).
    pub coop: Option<CoopConfig>,
    /// Record full value history and verify the no-stale-reads
    /// invariant after every interval (O(updates) memory; test use).
    pub check_safety: bool,
    /// Per-second energy weights for the client radio states (§9/§10
    /// listening-cost accounting).
    pub energy_model: EnergyModel,
    /// Optional per-client sleep probabilities, assigned cyclically —
    /// a *mixed population* of sleepers and workaholics in one cell
    /// (the paper analyzes homogeneous populations; the title's two
    /// species rarely live apart in practice). `None` = every client
    /// uses `params.s`.
    pub sleep_profile: Option<Vec<f64>>,
    /// Wake-tracking representation; `None` picks automatically from
    /// the cell's mean sleep probability (heap for sleeper cells, scan
    /// otherwise). Either choice produces bit-identical results.
    pub wake_mode: Option<WakeMode>,
    /// Cell label under which to record an observation trace
    /// (counters, per-interval series, NDJSON events). `None` — the
    /// default — records nothing; with the `observe` cargo feature off
    /// the label is ignored and the recorder is a compile-time no-op
    /// either way. Observation never changes simulation results (the
    /// determinism suite pins this).
    pub observe: Option<String>,
    /// Deterministic fault schedule (report loss, frame corruption,
    /// uplink retry, clock drift). `None` — the default — injects
    /// nothing; with the `faults` cargo feature off any plan is ignored
    /// and the injector is a compile-time no-op either way.
    pub faults: Option<FaultPlan>,
    /// Worker-thread count for the intra-cell report sweep. `None` —
    /// the default — resolves from `SW_THREADS`, falling back to the
    /// machine's parallelism. Any value (including 1) produces
    /// bit-identical results: the sweep partitions the awake set into
    /// disjoint contiguous ranges, the report is shared immutably, and
    /// every random draw happens outside the parallel section.
    pub sweep_threads: Option<usize>,
    /// Client-state storage backend. `None` — the default — picks the
    /// columnar struct-of-arrays fleet whenever the configuration is
    /// eligible (static report strategies, unbounded caches, no
    /// piggybacking, standalone cell) and the per-unit struct fleet
    /// otherwise. Both backends are bit-identical; the explicit
    /// settings exist for A/B equivalence tests.
    pub fleet: Option<FleetBackend>,
    /// Optional query-result plane (`sw-query`): every client runs a
    /// predicate-query workload whose cached results are invalidated by
    /// the same reports the item cache hears, plus multi-item
    /// transactional reads. `None` — the default — arms nothing and
    /// leaves every pre-query run byte-identical (the plane draws only
    /// from `StreamId::QueryPlan { index }`). Query-armed cells always
    /// use the boxed-unit fleet (the plane reads each client's item
    /// cache directly) and must be standalone (no mesh backbone).
    pub query: Option<QueryPlaneConfig>,
    /// Backbone seed for mesh membership. `None` — the default — means
    /// the cell is standalone and derives *everything* from `seed`.
    /// `Some(b)` marks the cell as one shard of a replicated-backbone
    /// mesh: the database contents, the server's update process, and
    /// the SIG subset family derive from `b` (shared by every shard)
    /// while the per-client query/sleep/hotspot streams still derive
    /// from the cell's own `seed`. Shards of one mesh therefore hold
    /// identical database replicas seeing identical updates — the
    /// precondition for a migrated cache entry to be meaningful at all
    /// — and the cell keeps a rolling log of report digests so the
    /// mesh can test the "report histories diverge" handoff clause.
    pub backbone: Option<MasterSeed>,
}

impl CellConfig {
    /// Creates a config with sensible defaults: 10 clients, hotspots of
    /// 50 items (clamped to `n`), uniform popularity, the test seed,
    /// timer-synchronized delivery, no piggybacking, safety checks off.
    pub fn new(params: ScenarioParams) -> Self {
        let hotspot = 50.min(params.n_items as usize);
        CellConfig {
            params,
            n_clients: 10,
            hotspot_size: hotspot,
            popularity: Popularity::Uniform,
            seed: MasterSeed::TEST,
            delivery: DeliveryMode::TimerSynchronized {
                clock_skew_bound: 0.0,
            },
            piggyback_hits: false,
            cache_capacity: None,
            replacement: ReplacementPolicy::default(),
            query_zipf: None,
            coop: None,
            check_safety: false,
            energy_model: EnergyModel::default(),
            sleep_profile: None,
            wake_mode: None,
            observe: None,
            faults: None,
            sweep_threads: None,
            fleet: None,
            query: None,
            backbone: None,
        }
    }

    /// Sets the number of clients.
    pub fn with_clients(mut self, n: usize) -> Self {
        assert!(n > 0, "a cell needs at least one client");
        self.n_clients = n;
        self
    }

    /// Sets the per-client hotspot size.
    pub fn with_hotspot_size(mut self, size: usize) -> Self {
        assert!(
            size > 0 && size as u64 <= self.params.n_items,
            "hotspot size must be in 1..=n"
        );
        self.hotspot_size = size;
        self
    }

    /// Sets the popularity model.
    pub fn with_popularity(mut self, p: Popularity) -> Self {
        self.popularity = p;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = MasterSeed(seed);
        self
    }

    /// Sets the delivery mode.
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.delivery = delivery;
        self
    }

    /// Enables uplink piggybacking of local-hit histories.
    pub fn with_piggybacking(mut self) -> Self {
        self.piggyback_hits = true;
        self
    }

    /// Bounds each client's cache.
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = Some(cap);
        self
    }

    /// Picks the replacement policy for bounded caches (meaningful only
    /// together with [`CellConfig::with_cache_capacity`]).
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Skews intra-hotspot query popularity with a Zipf(θ) draw over
    /// each client's hotspot (θ = 0 is uniform-by-another-stream; the
    /// default `None` keeps the original uniform stream untouched).
    pub fn with_query_zipf(mut self, theta: f64) -> Self {
        self.query_zipf = Some(theta);
        self
    }

    /// Arms cooperative misses over the mesh backbone: fresh misses may
    /// be served by a neighbor cell's verified copy at `b_coop` bits.
    pub fn with_coop(mut self, coop: CoopConfig) -> Self {
        self.coop = Some(coop);
        self
    }

    /// Enables the per-interval no-stale-reads invariant checker.
    pub fn with_safety_checking(mut self) -> Self {
        self.check_safety = true;
        self
    }

    /// Sets the client energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Gives each client its own sleep probability (assigned
    /// cyclically), overriding the homogeneous `params.s`.
    pub fn with_sleep_profile(mut self, profile: Vec<f64>) -> Self {
        assert!(!profile.is_empty(), "sleep profile cannot be empty");
        assert!(
            profile.iter().all(|s| (0.0..=1.0).contains(s)),
            "sleep probabilities must be in [0,1]"
        );
        self.sleep_profile = Some(profile);
        self
    }

    /// Forces the wake-tracking representation (tests and benches; the
    /// automatic choice is right for normal runs).
    pub fn with_wake_mode(mut self, mode: WakeMode) -> Self {
        self.wake_mode = Some(mode);
        self
    }

    /// Enables observation under the given cell label: the run records
    /// counters, histograms, a per-interval time series and an NDJSON
    /// event trace, attached to the report as
    /// [`crate::metrics::SimulationReport::observe`]. Requires the
    /// `observe` cargo feature to actually capture anything.
    pub fn with_observe(mut self, label: impl Into<String>) -> Self {
        self.observe = Some(label.into());
        self
    }

    /// Arms the deterministic fault injector with the given plan
    /// (requires the `faults` cargo feature to actually inject
    /// anything; the schedule is a pure function of the master seed).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Pins the intra-cell report-sweep worker count (tests and
    /// benches; normal runs resolve it from `SW_THREADS`/the machine).
    /// Bit-identical at any value.
    pub fn with_sweep_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "sweep needs at least one worker");
        self.sweep_threads = Some(threads);
        self
    }

    /// Forces the client-state storage backend (A/B equivalence tests;
    /// normal runs pick automatically). Forcing `Columnar` on an
    /// ineligible configuration is a construction error.
    pub fn with_fleet(mut self, backend: FleetBackend) -> Self {
        self.fleet = Some(backend);
        self
    }

    /// Arms the per-client query-result plane (`sw-query`): predicate
    /// queries over cached multi-item results, invalidated by the same
    /// reports as the item cache, plus transactional multi-item reads.
    pub fn with_query(mut self, query: QueryPlaneConfig) -> Self {
        self.query = Some(query);
        self
    }

    /// Marks the cell as a mesh shard sharing the given backbone seed
    /// (see the `backbone` field for exactly which streams move over).
    /// Standalone runs never set this, which is what keeps every
    /// pre-mesh artifact byte-identical.
    pub fn with_backbone(mut self, backbone: MasterSeed) -> Self {
        self.backbone = Some(backbone);
        self
    }

    /// The seed the cell-independent machinery derives from: the
    /// backbone seed for a mesh shard, the cell's own seed otherwise.
    pub fn protocol_seed(&self) -> MasterSeed {
        self.backbone.unwrap_or(self.seed)
    }

    /// Mean sleep probability across the cell (profile-weighted under
    /// the cyclic assignment), used to auto-pick the wake mode.
    pub fn mean_sleep_probability(&self) -> f64 {
        match &self.sleep_profile {
            Some(profile) => {
                let total: f64 = (0..self.n_clients)
                    .map(|idx| profile[idx % profile.len()])
                    .sum();
                total / self.n_clients as f64
            }
            None => self.params.s,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if self.n_clients == 0 {
            return Err("a cell needs at least one client".into());
        }
        if self.hotspot_size == 0 || self.hotspot_size as u64 > self.params.n_items {
            return Err(format!(
                "hotspot size {} must be in 1..=n ({})",
                self.hotspot_size, self.params.n_items
            ));
        }
        if let Some(cap) = self.cache_capacity {
            if cap == 0 {
                return Err("cache capacity must be positive".into());
            }
        }
        if let Some(theta) = self.query_zipf {
            if !theta.is_finite() || theta < 0.0 {
                return Err(format!(
                    "Zipf exponent must be finite and non-negative, got {theta}"
                ));
            }
            if self.backbone.is_some() {
                return Err(
                    "Zipf-skewed queries are standalone-only (the mesh's migration \
                     machinery replays hotspot draws it cannot re-skew)"
                        .into(),
                );
            }
        }
        if self.coop.is_some() && self.backbone.is_none() {
            return Err(
                "cooperative misses need a mesh backbone: a standalone cell \
                 has no neighbors to borrow fresh copies from"
                    .into(),
            );
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
        }
        if let Some(query) = &self.query {
            query.validate()?;
            if self.backbone.is_some() {
                return Err(
                    "the query plane is standalone-only (mesh shards hand whole units \
                     between cells; a traveling query cache is not modeled)"
                        .into(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_for_all_scenarios() {
        for (_, name, p) in ScenarioParams::all_scenarios() {
            CellConfig::new(p)
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn builder_chain_applies() {
        let c = CellConfig::new(ScenarioParams::scenario1())
            .with_clients(5)
            .with_hotspot_size(20)
            .with_seed(99)
            .with_piggybacking()
            .with_cache_capacity(10)
            .with_safety_checking();
        assert_eq!(c.n_clients, 5);
        assert_eq!(c.hotspot_size, 20);
        assert_eq!(c.seed, MasterSeed(99));
        assert!(c.piggyback_hits);
        assert_eq!(c.cache_capacity, Some(10));
        assert!(c.check_safety);
    }

    #[test]
    fn hotspot_clamped_to_database() {
        let mut p = ScenarioParams::scenario1();
        p.n_items = 10;
        let c = CellConfig::new(p);
        assert_eq!(c.hotspot_size, 10);
    }

    #[test]
    fn sleep_profile_applies() {
        let c = CellConfig::new(ScenarioParams::scenario1())
            .with_sleep_profile(vec![0.0, 0.8]);
        assert_eq!(c.sleep_profile, Some(vec![0.0, 0.8]));
    }

    #[test]
    #[should_panic(expected = "sleep probabilities")]
    fn bad_sleep_profile_rejected() {
        let _ = CellConfig::new(ScenarioParams::scenario1()).with_sleep_profile(vec![0.5, 1.2]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_sleep_profile_rejected() {
        let _ = CellConfig::new(ScenarioParams::scenario1()).with_sleep_profile(vec![]);
    }

    #[test]
    fn protocol_seed_follows_backbone() {
        let standalone = CellConfig::new(ScenarioParams::scenario1()).with_seed(7);
        assert_eq!(standalone.protocol_seed(), MasterSeed(7));
        let shard = standalone.clone().with_backbone(MasterSeed(99));
        assert_eq!(shard.protocol_seed(), MasterSeed(99));
        assert_eq!(shard.seed, MasterSeed(7), "client streams keep the cell seed");
    }

    #[test]
    fn fault_plan_is_validated() {
        use sw_faults::LossModel;
        let good = CellConfig::new(ScenarioParams::scenario1())
            .with_faults(FaultPlan::none().with_loss(LossModel::bernoulli(0.1)));
        good.validate().unwrap();
        let bad = CellConfig::new(ScenarioParams::scenario1())
            .with_faults(FaultPlan::none().with_loss(LossModel::bernoulli(2.0)));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn coop_requires_backbone() {
        let standalone =
            CellConfig::new(ScenarioParams::scenario1()).with_coop(CoopConfig::default());
        assert!(standalone.validate().is_err());
        let shard = standalone.with_backbone(MasterSeed(5));
        shard.validate().unwrap();
    }

    #[test]
    fn query_zipf_standalone_and_finite() {
        let base = CellConfig::new(ScenarioParams::scenario1());
        base.clone().with_query_zipf(0.8).validate().unwrap();
        assert!(base.clone().with_query_zipf(-1.0).validate().is_err());
        assert!(base.clone().with_query_zipf(f64::NAN).validate().is_err());
        assert!(base
            .with_query_zipf(0.8)
            .with_backbone(MasterSeed(5))
            .validate()
            .is_err());
    }

    #[test]
    fn replacement_builder_applies() {
        let c = CellConfig::new(ScenarioParams::scenario1())
            .with_cache_capacity(8)
            .with_replacement(ReplacementPolicy::WindowAge);
        assert_eq!(c.replacement, ReplacementPolicy::WindowAge);
        c.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "hotspot size")]
    fn oversized_hotspot_rejected() {
        let mut p = ScenarioParams::scenario1();
        p.n_items = 10;
        let _ = CellConfig::new(p).with_hotspot_size(11);
    }
}
