//! The strategy catalogue.
//!
//! [`Strategy`] names every invalidation scheme this library implements
//! and knows how to construct the matching server-side report builder
//! and client-side handler pair. The pairing is load-bearing: a TS
//! server with an AT client would be silently wrong, so construction
//! goes through this one place.

use sw_adaptive::{AdaptiveTsHandler, FeedbackMethod};
use sw_client::{
    AtHandler, GroupHandler, HybridHandler, NoCacheHandler, ReportHandler, SigHandler, TsHandler,
};
use sw_quasi::DelayQuasiHandler;
use sw_server::{
    AtBuilder, Database, GroupMap, GroupReportBuilder, HotSet, HybridSigBuilder, NoReportBuilder,
    ReportBuilder, SigBuilder, TsBuilder,
};
use sw_signature::{SigPlan, SubsetFamily};
use sw_sim::{MasterSeed, SimDuration, StreamId};
use sw_workload::ScenarioParams;

/// Every cache-invalidation strategy in the catalogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// §3.1 Broadcasting Timestamps, window `w = k·L` (k from the
    /// scenario parameters).
    BroadcastTimestamps,
    /// §3.2 Amnesic Terminals.
    AmnesicTerminals,
    /// §3.3 Signatures.
    Signatures,
    /// §4.2 No caching: every query goes uplink.
    NoCache,
    /// §8 Adaptive TS with per-item windows.
    AdaptiveTs {
        /// Feedback method (1 = piggybacked hit histories, 2 = uplink
        /// deltas).
        method: FeedbackMethod,
        /// Evaluation period, in intervals.
        eval_period: u32,
        /// Window adjustment step `e` of Eq. 31, in intervals.
        step: u32,
    },
    /// §7 delay-condition quasi-copies over TS reports, allowed lag
    /// `α = alpha_intervals·L`.
    QuasiDelay {
        /// Allowed lag in intervals (`j`, with `α = jL`).
        alpha_intervals: u64,
    },
    /// §2's stateful-server baseline: the server tracks every client's
    /// cache and sends *directed* invalidation messages. Clients behave
    /// like AT units (a disconnection loses the cache — the server
    /// dropped their registrations); the difference is the channel
    /// accounting: per-holder directed messages plus connect/disconnect
    /// registration traffic instead of one broadcast report.
    Stateful,
    /// §10's weighted-report extension: the `hot_count` most popular
    /// items (rank = id under the library's Zipf convention) are
    /// broadcast individually AT-style; the cold remainder participates
    /// in the combined signatures.
    HybridSig {
        /// Number of hot items broadcast individually.
        hot_count: u64,
    },
    /// §10's aggregate-report extension: AT at *group* granularity —
    /// one id per contiguous group of `n/groups` items with at least
    /// one change; clients drop every cached member of a listed group.
    GroupReports {
        /// Number of groups the database is partitioned into.
        groups: u64,
    },
}

impl Strategy {
    /// Short name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BroadcastTimestamps => "TS",
            Strategy::AmnesicTerminals => "AT",
            Strategy::Signatures => "SIG",
            Strategy::NoCache => "NC",
            Strategy::AdaptiveTs { .. } => "ATS",
            Strategy::QuasiDelay { .. } => "QD",
            Strategy::Stateful => "SF",
            Strategy::HybridSig { .. } => "HYB",
            Strategy::GroupReports { .. } => "GR",
        }
    }

    /// Whether clients under this strategy cache at all.
    pub fn caches(&self) -> bool {
        !matches!(self, Strategy::NoCache)
    }

    /// The strategy's safety contract for the no-stale-reads checker
    /// (see [`crate::safety::SafetyExpectation`]).
    ///
    /// Every gap-dropping strategy is never-stale under *any* fault
    /// schedule: TS, AT, the adaptive/quasi-window variants that keep
    /// the drop rule, the group-granular AT, the stateful baseline
    /// (whose reconnects drop), and trivially NC. The signature
    /// strategies tolerate a bounded false-validation rate (collisions
    /// plus the fetch-window blind spot); quasi-delay copies are stale
    /// *by design* up to `α`, so the strict checker is not an oracle
    /// for them.
    pub fn safety_expectation(&self) -> crate::safety::SafetyExpectation {
        use crate::safety::SafetyExpectation;
        match self {
            Strategy::Signatures | Strategy::HybridSig { .. } => {
                SafetyExpectation::BoundedRate(Self::SIG_VIOLATION_BOUND)
            }
            Strategy::QuasiDelay { .. } => SafetyExpectation::QuasiByDesign,
            Strategy::BroadcastTimestamps
            | Strategy::AmnesicTerminals
            | Strategy::NoCache
            | Strategy::AdaptiveTs { .. }
            | Strategy::Stateful
            | Strategy::GroupReports { .. } => SafetyExpectation::NeverStale,
        }
    }

    /// Documented bound on the SIG-family false-validation rate over
    /// checked cache entries: signature collisions contribute ≈ `2^-g`
    /// per unmatched pair and the one-interval fetch blind spot the
    /// rest; 1% holds with a wide margin at the paper's `g = 16`.
    pub const SIG_VIOLATION_BOUND: f64 = 0.01;

    /// Builds the server-side report builder. `db` is needed by SIG to
    /// compute the initial combined signatures.
    ///
    /// Adaptive TS is *not* constructed here — it needs the controller
    /// wiring the simulation owns; see `simulation::ServerSide`.
    ///
    /// Public because the live runtime (`sw-live`) constructs the same
    /// builder/handler pairs the simulation does — the simulator is the
    /// executable spec of the daemon, so both must derive identical
    /// protocol state from a shared seed. Panics (`unreachable!`) for
    /// the driver-constructed strategies (adaptive TS, stateful).
    pub fn make_builder(
        &self,
        params: &ScenarioParams,
        seed: MasterSeed,
        db: &Database,
    ) -> Box<dyn ReportBuilder + Send> {
        let latency = SimDuration::from_secs(params.latency_secs);
        match self {
            Strategy::BroadcastTimestamps => Box::new(TsBuilder::new(latency, params.k)),
            Strategy::AmnesicTerminals => Box::new(AtBuilder::new(latency)),
            Strategy::Signatures => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Box::new(SigBuilder::new(plan, family, db))
            }
            Strategy::NoCache => Box::new(NoReportBuilder),
            Strategy::AdaptiveTs { .. } => {
                unreachable!("adaptive TS is constructed by the simulation driver")
            }
            // Quasi-delay uses plain TS reports server-side; the
            // obligation-list report *thinning* is layered by the
            // simulation driver.
            Strategy::QuasiDelay { alpha_intervals } => Box::new(TsBuilder::with_window(
                latency.scaled(*alpha_intervals as f64),
            )),
            Strategy::Stateful => {
                unreachable!("the stateful baseline is constructed by the simulation driver")
            }
            Strategy::HybridSig { hot_count } => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Box::new(HybridSigBuilder::new(
                    latency,
                    HotSet::top_by_rank((*hot_count).min(params.n_items)),
                    plan,
                    family,
                    db,
                ))
            }
            Strategy::GroupReports { groups } => Box::new(GroupReportBuilder::new(
                latency,
                GroupMap::new(params.n_items, (*groups).clamp(1, params.n_items)),
            )),
        }
    }

    /// Builds one client's report handler.
    ///
    /// Public for the same reason as [`Strategy::make_builder`]: a live
    /// MU must process reports with exactly the handler the simulated
    /// MU would use.
    pub fn make_handler(
        &self,
        params: &ScenarioParams,
        seed: MasterSeed,
    ) -> Box<dyn ReportHandler + Send> {
        let latency = SimDuration::from_secs(params.latency_secs);
        match self {
            Strategy::BroadcastTimestamps => Box::new(TsHandler::new(latency, params.k)),
            Strategy::AmnesicTerminals => Box::new(AtHandler::new(latency)),
            Strategy::Signatures => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Box::new(SigHandler::new(sw_signature::SyndromeDecoder::new(
                    family, plan,
                )))
            }
            Strategy::NoCache => Box::new(NoCacheHandler),
            Strategy::AdaptiveTs { .. } => Box::new(AdaptiveTsHandler::new(latency, params.k)),
            Strategy::QuasiDelay { alpha_intervals } => {
                Box::new(DelayQuasiHandler::new(latency, *alpha_intervals))
            }
            // Stateful clients process the union of their directed
            // invalidations, which the driver frames as an AT-style id
            // list; the gap-drop models losing the cache on reconnect.
            Strategy::Stateful => Box::new(AtHandler::new(latency)),
            Strategy::HybridSig { hot_count } => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Box::new(HybridHandler::new(
                    latency,
                    HotSet::top_by_rank((*hot_count).min(params.n_items)),
                    sw_signature::SyndromeDecoder::new(family, plan),
                ))
            }
            Strategy::GroupReports { groups } => Box::new(GroupHandler::new(
                latency,
                GroupMap::new(params.n_items, (*groups).clamp(1, params.n_items)),
            )),
        }
    }

    /// Builds the fleet-shared kernel state for the columnar client
    /// backend — the same window/latency/decoder/hot-set/group-map a
    /// [`Strategy::make_handler`] call would embed in each boxed
    /// handler, constructed once. Returns `None` for the strategies
    /// whose handlers carry driver-wired per-client state (adaptive TS,
    /// quasi-delay, stateful): those stay on boxed units.
    pub(crate) fn columnar_spec(
        &self,
        params: &ScenarioParams,
        seed: MasterSeed,
    ) -> Option<crate::fleet::ColumnarSpec> {
        use crate::fleet::ColumnarSpec;
        let latency = SimDuration::from_secs(params.latency_secs);
        match self {
            Strategy::BroadcastTimestamps => {
                assert!(params.k >= 1, "TS window multiple k must be at least 1");
                Some(ColumnarSpec::Ts {
                    window: latency.scaled(params.k as f64),
                })
            }
            Strategy::AmnesicTerminals => Some(ColumnarSpec::At { latency }),
            Strategy::Signatures => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Some(ColumnarSpec::Sig {
                    decoder: sw_signature::SyndromeDecoder::new(family, plan),
                })
            }
            Strategy::NoCache => Some(ColumnarSpec::NoCache),
            Strategy::HybridSig { hot_count } => {
                let plan = SigPlan::new(
                    params.f,
                    params.g,
                    params.n_items,
                    params.sig_delta,
                    SigPlan::DEFAULT_K,
                );
                let family = SubsetFamily::new(sig_seed(seed), plan.m, plan.f);
                Some(ColumnarSpec::Hybrid {
                    latency,
                    hot: HotSet::top_by_rank((*hot_count).min(params.n_items)),
                    decoder: sw_signature::SyndromeDecoder::new(family, plan),
                })
            }
            Strategy::GroupReports { groups } => Some(ColumnarSpec::Group {
                latency,
                map: GroupMap::new(params.n_items, (*groups).clamp(1, params.n_items)),
            }),
            Strategy::AdaptiveTs { .. } | Strategy::QuasiDelay { .. } | Strategy::Stateful => None,
        }
    }
}

/// The SIG subset-family seed both sides derive from the master seed.
fn sig_seed(seed: MasterSeed) -> u64 {
    // Any deterministic function of the master seed works; draw one word
    // from the dedicated signature stream.
    seed.stream(StreamId::Signatures).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::SimDuration;

    fn db(params: &ScenarioParams) -> Database {
        Database::new(
            params.n_items,
            |i| i,
            SimDuration::from_secs(params.window_secs().max(params.latency_secs) * 2.0),
        )
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::BroadcastTimestamps.name(), "TS");
        assert_eq!(Strategy::AmnesicTerminals.name(), "AT");
        assert_eq!(Strategy::Signatures.name(), "SIG");
        assert_eq!(Strategy::NoCache.name(), "NC");
    }

    #[test]
    fn builder_and_handler_names_match() {
        let params = ScenarioParams::scenario1();
        let d = db(&params);
        for s in [
            Strategy::BroadcastTimestamps,
            Strategy::AmnesicTerminals,
            Strategy::Signatures,
            Strategy::NoCache,
        ] {
            let b = s.make_builder(&params, MasterSeed::TEST, &d);
            let h = s.make_handler(&params, MasterSeed::TEST);
            assert_eq!(b.name(), h.name(), "strategy {s:?}");
        }
    }

    #[test]
    fn sig_sides_share_the_family() {
        // Server and client must derive the same subset family from the
        // same master seed — otherwise every diagnosis is garbage. The
        // cheap proxy: same seed twice gives identical families.
        assert_eq!(sig_seed(MasterSeed(1)), sig_seed(MasterSeed(1)));
        assert_ne!(sig_seed(MasterSeed(1)), sig_seed(MasterSeed(2)));
    }

    #[test]
    fn no_cache_does_not_cache() {
        assert!(!Strategy::NoCache.caches());
        assert!(Strategy::Signatures.caches());
    }

    #[test]
    fn safety_expectations_follow_the_paper() {
        use crate::safety::SafetyExpectation;
        assert_eq!(
            Strategy::BroadcastTimestamps.safety_expectation(),
            SafetyExpectation::NeverStale
        );
        assert_eq!(
            Strategy::AmnesicTerminals.safety_expectation(),
            SafetyExpectation::NeverStale
        );
        assert_eq!(
            Strategy::Stateful.safety_expectation(),
            SafetyExpectation::NeverStale
        );
        assert_eq!(
            Strategy::Signatures.safety_expectation(),
            SafetyExpectation::BoundedRate(Strategy::SIG_VIOLATION_BOUND)
        );
        assert_eq!(
            Strategy::HybridSig { hot_count: 10 }.safety_expectation(),
            SafetyExpectation::BoundedRate(Strategy::SIG_VIOLATION_BOUND)
        );
        assert_eq!(
            Strategy::QuasiDelay { alpha_intervals: 3 }.safety_expectation(),
            SafetyExpectation::QuasiByDesign
        );
    }
}
