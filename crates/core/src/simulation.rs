//! The discrete-event cell simulation.
//!
//! One [`CellSimulation`] drives a single cell: the stationary server
//! (database + update process + report builder), the broadcast channel,
//! and a fleet of mobile units. Time advances interval by interval
//! (everything in the paper synchronizes on the report at `T_i = i·L`);
//! within an interval, updates and query arrivals occur at exact
//! exponential arrival times.
//!
//! Per interval `i` (covering `(T_{i−1}, T_i]`):
//!
//! 1. the update engine applies this interval's updates to the database
//!    (report builders observe each via `on_update`);
//! 2. the builder produces the report broadcast at `T_i`, which is
//!    charged `B_c` bits against the interval budget `L·W`;
//! 3. every client draws its sleep state; awake clients generate query
//!    arrivals, hear the report (running their strategy's §3
//!    algorithm), answer pending queries from cache, and send misses
//!    uplink — each costing `b_q + b_a` bits;
//! 4. optionally, the safety checker verifies every cache entry against
//!    the full value history;
//! 5. adaptive/quasi bookkeeping (evaluation periods, obligation lists)
//!    runs at the boundary.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use sw_adaptive::FeedbackMethod;
use sw_capacity::{CapacityStats, CoopDirectory, CoopFeed, CoopStats};
use sw_client::handler::time_to_micros;
use sw_client::{IntervalReport, MobileUnit, MuConfig, MuStats};
use sw_faults::{FaultLayer, ReportFate};
use sw_query::{QueryPlane, QueryStats};
use sw_server::{Database, ItemId, PiggybackInfo, QueryAnswer, UpdateEngine, UplinkProcessor};
use sw_observe::{Recorder, Value};
use sw_sim::{IntervalClock, MasterSeed, RngStream, SimDuration, SimTime, StreamId};
use sw_wireless::frame::{checksum64, flip_bit};
use sw_wireless::{
    BroadcastChannel, ChannelError, EnergyTotals, FramePayload, ReportDelivery, WireEncode,
};
use sw_workload::{HotspotSpec, ZipfPicker};

use crate::config::{CellConfig, FleetBackend, WakeMode};
use crate::driver::ServerDriver;
use crate::fleet::{CapacitySpec, ColumnarFleet};
use crate::metrics::{MigrationStats, SimulationReport};
use crate::safety::{SafetyExpectation, SafetyStats, ValueHistory};
use crate::strategy::Strategy;

/// Errors a simulation can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// The invalidation report exceeds the interval capacity `L·W` —
    /// the strategy is unusable at these parameters (§6 drops TS from
    /// Scenarios 3/4 for exactly this).
    ReportTooLarge {
        /// Bits the report needed.
        bits: u64,
        /// Bits available per interval.
        capacity: u64,
    },
    /// A never-stale strategy (TS, AT, NC, ATS, SF, GR) validated a
    /// stale cache entry. The safety checker normally just counts
    /// violations so SIG's bounded collision rate can be measured; for
    /// strategies whose contract is *zero* false validations under any
    /// fault schedule, the run aborts at the first one instead of
    /// averaging it away.
    SafetyViolated {
        /// The offending strategy's name.
        strategy: &'static str,
        /// Interval in which the stale entry was validated.
        interval: u64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimulationError::ReportTooLarge { bits, capacity } => write!(
                f,
                "invalidation report of {bits} bits exceeds interval capacity of {capacity} bits; \
                 the strategy is unusable at these parameters"
            ),
            SimulationError::SafetyViolated { strategy, interval } => write!(
                f,
                "no-stale-reads guarantee broken: never-stale strategy {strategy} validated a \
                 stale cache entry in interval {interval}"
            ),
        }
    }
}

impl std::error::Error for SimulationError {}

/// Above this mean sleep probability the automatic [`WakeMode`] choice
/// uses the heap: with ≥ 95% of the cell asleep, skipping sleepers
/// outweighs the heap's churn. Below it, the dense scan's sequential
/// pass beats paying a push+pop per awake client per interval.
const HEAP_SLEEP_THRESHOLD: f64 = 0.95;

/// The sleeper skip-list: which unit wakes in which interval, under
/// either [`WakeMode`] representation. Both produce the identical due
/// set in the identical ascending-index order (all entries due in
/// interval `i` carry wake time exactly `i`, so heap pops order by
/// index; the scan is index-ordered by construction), so every random
/// stream downstream is consumed in the same sequence regardless of
/// mode.
enum WakeSchedule {
    /// `wake_at[idx]` = next interval in which unit `idx` is awake
    /// (`u64::MAX` = never wakes again).
    Scan { wake_at: Vec<u64> },
    /// Min-heap of `(wake_interval, client_idx)`; never-waking units
    /// simply leave the heap.
    Heap { heap: BinaryHeap<Reverse<(u64, usize)>> },
}

impl WakeSchedule {
    fn new(mode: WakeMode, n_clients: usize) -> Self {
        match mode {
            WakeMode::Scan => WakeSchedule::Scan {
                wake_at: vec![u64::MAX; n_clients],
            },
            WakeMode::Heap => WakeSchedule::Heap {
                heap: BinaryHeap::with_capacity(n_clients),
            },
        }
    }

    /// Schedules unit `idx` to wake in interval `wake` (`u64::MAX` =
    /// never). Each unit must be rescheduled after every pop.
    fn schedule(&mut self, idx: usize, wake: u64) {
        match self {
            WakeSchedule::Scan { wake_at } => wake_at[idx] = wake,
            WakeSchedule::Heap { heap } => {
                if wake != u64::MAX {
                    heap.push(Reverse((wake, idx)));
                }
            }
        }
    }

    /// Extends the schedule for one appended client slot (mesh attach).
    /// Scan mode must grow its wake vector; heap mode just pushes.
    fn push_client(&mut self, idx: usize, wake: u64) {
        match self {
            WakeSchedule::Scan { wake_at } => {
                debug_assert_eq!(wake_at.len(), idx, "attach appends, never inserts");
                wake_at.push(wake);
            }
            WakeSchedule::Heap { .. } => self.schedule(idx, wake),
        }
    }

    /// Appends every unit due at interval `i` to `awake`, ascending by
    /// client index.
    fn pop_due(&mut self, i: u64, awake: &mut Vec<usize>) {
        match self {
            WakeSchedule::Scan { wake_at } => {
                for (idx, &wake) in wake_at.iter().enumerate() {
                    if wake <= i {
                        awake.push(idx);
                    }
                }
            }
            WakeSchedule::Heap { heap } => {
                while let Some(&Reverse((wake, idx))) = heap.peek() {
                    if wake > i {
                        break;
                    }
                    heap.pop();
                    awake.push(idx);
                }
            }
        }
    }
}

/// A query exchange rejected by a saturated interval (or abandoned by
/// the uplink fault model), waiting for a later interval's budget.
/// Deferred exchanges are charged to the traffic totals only when they
/// actually transmit, so each query counts once however long it waits.
struct QueuedExchange {
    /// Client index within the cell.
    idx: usize,
    /// Item the client is fetching.
    item: ItemId,
    /// Piggybacked hit history captured when the miss occurred.
    piggyback: Option<PiggybackInfo>,
}

/// Per-client output of the (possibly parallel) report sweep. The
/// sweep applies the shared report to disjoint client ranges; the
/// items are then merged sequentially in ascending client order, so
/// every channel charge, random draw, and observation event happens in
/// the same order at any worker count.
pub(crate) struct SweepItem {
    /// Position in the interval's awake set.
    pub(crate) slot: usize,
    /// Pre-processing stats snapshot and last-heard-report time
    /// (captured only when observing; feeds the per-interval series
    /// and the false-alarm analysis).
    pub(crate) pre: Option<(MuStats, Option<SimTime>)>,
    /// Cache length carried into the first report after a handoff
    /// (`Some` only for newly migrated units; always `None` on the
    /// columnar fleet, which never hosts migrations).
    pub(crate) migrated_pre_len: Option<usize>,
    /// What the client did with the report and which fetches it needs.
    pub(crate) outcome: IntervalReport,
}

/// Below this many listening clients the parallel sweep is not worth
/// its thread hand-off; the sequential path runs instead. Purely a
/// performance threshold — both paths are bit-identical.
const SWEEP_PAR_MIN: usize = 256;

/// Whether the report just heard vouches that a cooperative copy
/// stamped at `feed_stamp_micros` is still current for `item`. TS is
/// sound because its window `w = kL ≥ L` always covers the one-interval
/// gap back to the neighbor's snapshot: decline iff the report lists an
/// update strictly after the snapshot. AT's id list is exactly the
/// updates since the last report: decline iff the item is listed. Every
/// other family (signatures, hybrid, group, adaptive) cannot prove
/// per-item freshness from its report, so it always declines — the
/// never-stale safety audit stays armed downstream either way.
fn coop_vouch(payload: &FramePayload, feed_stamp_micros: u64, item: ItemId) -> bool {
    match payload {
        FramePayload::TimestampReport { entries, .. } => entries
            .iter()
            .all(|&(id, t)| id != item || t <= feed_stamp_micros),
        FramePayload::AmnesicReport { ids, .. } => !ids.contains(&item),
        _ => false,
    }
}

/// One client's share of the report sweep: apply the shared payload,
/// answer pending queries, and record what the merge pass needs. Reads
/// and writes only `mu` — no shared state, no randomness — which is
/// what lets the sweep fan out over disjoint client ranges.
fn sweep_client(
    mu: &mut MobileUnit,
    slot: usize,
    observing: bool,
    migrated: bool,
    payload: &FramePayload,
) -> SweepItem {
    // Pre-processing snapshot for the per-interval series; the
    // last-report time is the false-alarm reference point (§6).
    let pre = if observing {
        Some((mu.stats(), mu.last_report_heard()))
    } else {
        None
    };
    // A unit hearing its first report after a handoff: snapshot the
    // cache it carried in, so a whole-cache drop triggered by this
    // report is attributable to the cell switch (an empty carried
    // cache has nothing to lose and counts no drop).
    let migrated_pre_len = if migrated { Some(mu.cache().len()) } else { None };
    let outcome = mu.hear_report_and_answer(payload);
    SweepItem {
        slot,
        pre,
        migrated_pre_len,
        outcome,
    }
}

/// How one uplink exchange attempt sequence ended.
enum ExchangeOutcome {
    /// Transmitted, answered, and installed in the client's cache.
    Done,
    /// The interval's bit budget rejected the exchange; it is queued
    /// FIFO for a later interval and has been charged nothing.
    Saturated,
    /// Every transmitted attempt this interval failed (uplink fault
    /// model); the exchange is queued for a later interval. The failed
    /// attempts *did* burn airtime and are charged as traffic.
    FaultDeferred,
}

/// A mobile unit in transit between two cells of a mesh, detached from
/// its source cell and not yet attached to its destination.
///
/// The whole client travels: its cache, its strategy handler (so SIG's
/// tracked signatures survive the move), its query and sleep streams,
/// and its settled-interval bookkeeping. The mesh layer only ferries
/// this between [`CellSimulation::detach_client`] and
/// [`CellSimulation::attach_client`]; the contents stay private to the
/// cell driver.
pub struct HandoffClient {
    mu: MobileUnit,
    query_rng: RngStream,
    sleep_rng: RngStream,
    /// The interval the unit was scheduled to wake in at its source
    /// cell (`u64::MAX` = never); attach clamps it forward to enforce
    /// the transit blackout.
    next_wake: u64,
    /// Last interval whose sleep accounting was settled (the mesh's
    /// cells share one absolute interval clock, so this carries over).
    last_settled: u64,
}

impl HandoffClient {
    /// Whether the traveling unit holds any cached entries (the mesh's
    /// drop accounting peeks at this; contents stay private).
    pub fn has_cache(&self) -> bool {
        !self.mu.cache().is_empty()
    }
}

/// One simulated cell.
pub struct CellSimulation {
    config: CellConfig,
    strategy: Strategy,
    db: Database,
    history: Option<ValueHistory>,
    server: ServerDriver,
    uplink: UplinkProcessor,
    channel: BroadcastChannel,
    clock: IntervalClock,
    clients: Vec<MobileUnit>,
    /// The columnar client backend (`Some` = the fleet's state lives in
    /// struct-of-arrays columns and `clients` is empty). Chosen at
    /// construction when the configuration is eligible — static report
    /// strategies, no piggybacking, no mesh backbone; bounded caches
    /// clock along as extra columns — or forced either way by
    /// `config.fleet`. Bit-identical to the boxed-unit fleet (pinned by
    /// the columnar-equivalence suite).
    columnar: Option<ColumnarFleet>,
    /// The next interval in which each currently-sleeping (or
    /// yet-unprocessed) unit is awake. The per-interval loop takes
    /// exactly the awake set from it — heap-backed sleeper cells never
    /// visit sleepers; scan-backed workaholic cells pay one sequential
    /// pass instead of heap churn.
    wake: WakeSchedule,
    /// Last interval whose sleep accounting was settled, per client
    /// (sleep runs are credited lazily at wake-up).
    last_settled: Vec<u64>,
    /// Stateful baseline only: units that went to sleep after the
    /// previous interval and must disconnect at the start of this one.
    pending_disconnects: Vec<usize>,
    sleep_rngs: Vec<RngStream>,
    query_rngs: Vec<RngStream>,
    /// Per-slot query-result planes (`sw-query`), index-parallel to the
    /// fleet. All `None` unless the config arms `query`; always `None`
    /// on the columnar backend (query-armed cells force boxed units).
    /// Each plane draws only from `StreamId::QueryPlan { index }`, so
    /// arming it never perturbs the item-plane streams.
    query_planes: Vec<Option<QueryPlane>>,
    /// Zipf-skewed hotspot picker (`config.query_zipf`): the shared CDF
    /// over hotspot ranks plus one dedicated RNG stream per client
    /// (`StreamId::ZipfQuery`). Arrival *times* stay on the query
    /// streams; only the per-arrival item pick moves here, so unarmed
    /// runs consume exactly the classic draw sequence.
    zipf: Option<(ZipfPicker, Vec<RngStream>)>,
    /// Cooperative-miss state (mesh shards with `config.coop` armed):
    /// the merged neighbor directory installed at the last barrier,
    /// consumed by this interval's fresh misses. `None` for standalone
    /// cells and before the first barrier.
    coop_feed: Option<CoopFeed>,
    /// Sidelink serve counters (all zeros unless `config.coop` armed).
    coop_stats: CoopStats,
    update_rng: RngStream,
    update_engine: UpdateEngine,
    report_bits_total: u64,
    overflow_exchanges: u64,
    registration_messages: u64,
    safety: SafetyStats,
    /// Exchanges deferred by saturated intervals (or exhausted uplink
    /// retries), drained FIFO at the start of each interval's client
    /// phase. Normally empty: the simulated fleet sits far below
    /// channel capacity.
    pending_uplinks: VecDeque<QueuedExchange>,
    /// Worker count for the intra-cell report sweep (phase 4b).
    /// Resolved once at construction from the config (or
    /// `SW_THREADS`/machine parallelism); results are bit-identical at
    /// any value, so this is purely a throughput knob.
    sweep_threads: usize,
    /// Mirror of `pending_uplinks` as a membership set, so the
    /// duplicate-fetch check is O(1) instead of a queue scan. Under a
    /// saturated cold start the queue holds tens of thousands of
    /// entries and every fresh miss consults this check — the linear
    /// scan made those intervals quadratic. Entries for departed
    /// clients are tombstones: they stay queued (and in this set) until
    /// the FIFO drain reaches and discards them, so a mesh detach costs
    /// O(1) instead of an O(queue) retain.
    queued_exchanges: HashSet<(usize, ItemId)>,
    /// Deterministic fault injector. A zero-sized compile-time no-op
    /// without the `faults` cargo feature; one null check per interval
    /// when compiled in but unarmed. Draws only from
    /// `StreamId::Faults { index }`, so arming it never perturbs the
    /// query/sleep/update streams.
    faults: FaultLayer,
    delivery: ReportDelivery,
    delivery_rng: RngStream,
    energy: EnergyTotals,
    /// `departed[idx]` = the unit in slot `idx` migrated away and the
    /// slot holds an inert husk. Slots are never reused (index-parallel
    /// vectors and heap entries must stay stable); arrivals append.
    departed: Vec<bool>,
    /// Number of `true` entries in `departed` (present population =
    /// `clients.len() - departed_count`).
    departed_count: usize,
    /// Mirror of each unit's currently scheduled wake interval, so a
    /// detach can read a sleeper's wake time (the heap can't be asked).
    next_wake_hint: Vec<u64>,
    /// `newly_migrated[idx]` = the unit arrived by handoff and has not
    /// yet heard a report here; the first report heard decides whether
    /// the handoff cost it its cache.
    newly_migrated: Vec<bool>,
    /// Next id to hand an arriving unit (ids stay unique within the
    /// cell across any number of arrivals).
    next_client_id: u64,
    /// Handoff counters (all zero for standalone cells).
    migration: MigrationStats,
    /// Arrivals since the last step, for the mesh series column.
    arrivals_since_step: u64,
    /// Rolling log of `(interval, report checksum)` pairs, kept only
    /// for mesh shards (`config.backbone` set): the mesh compares the
    /// overlapping suffixes of two cells' logs to decide the "report
    /// histories diverge" handoff clause. Never feeds back into the
    /// simulation.
    report_digests: VecDeque<(u64, u64)>,
    /// Stateful baseline: control-message charges owed for clients that
    /// disconnected by *leaving the cell* between intervals (the
    /// registry is updated at detach; the channel can only be charged
    /// once the next interval opens its budget).
    deferred_control: Vec<u64>,
    /// Instrumentation. A compile-time no-op without the `observe`
    /// cargo feature; a one-branch no-op unless the config carries an
    /// observation label. Never consumes randomness and never feeds
    /// back into the simulation, so observed and unobserved runs are
    /// bit-identical (pinned by the determinism suite).
    obs: Recorder,
}

impl CellSimulation {
    /// Builds the cell: database, server, channel, and client fleet.
    pub fn new(config: CellConfig, strategy: Strategy) -> Result<Self, SimulationError> {
        config
            .validate()
            .map_err(SimulationError::InvalidConfig)?;
        let params = config.params;
        let latency = SimDuration::from_secs(params.latency_secs);
        // The update log must cover the largest lookback any strategy
        // performs: w = kL for TS (also the quasi α and the adaptive
        // starting window), one L for AT.
        let retention = latency.scaled((params.k as f64 + 2.0).max(4.0));

        // Cell-independent machinery (database contents, the update
        // process, the SIG subset family) derives from the protocol
        // seed: the cell's own seed when standalone, the shared
        // backbone seed when the cell is a mesh shard — every shard
        // then replicates the same database seeing the same updates,
        // which is what makes a migrated cache entry meaningful.
        let protocol_seed = config.protocol_seed();
        let mut db_rng = protocol_seed.stream(StreamId::Database);
        let db = Database::new(params.n_items, |_| db_rng.next_u64(), retention);
        let history = config
            .check_safety
            .then(|| ValueHistory::new(params.n_items, |i| db.value(i)));

        let server = ServerDriver::new(strategy, &params, protocol_seed, &db, config.n_clients);

        let encode = WireEncode::new(
            params.n_items,
            params.timestamp_bits,
            params.query_bits,
            params.answer_bits,
        );
        let channel = BroadcastChannel::new(params.bandwidth_bps, params.latency_secs, encode);

        let spec = HotspotSpec::new(params.n_items, config.hotspot_size, config.popularity);
        let piggyback = config.piggyback_hits
            || matches!(
                strategy,
                Strategy::AdaptiveTs {
                    method: FeedbackMethod::Method1,
                    ..
                }
            );
        let stateful = matches!(strategy, Strategy::Stateful);
        // Columnar fleet eligibility: static report builders whose
        // per-client state is columnar — (cache, T_l), plus the
        // bounded-cache replacement clocks, which ride along as extra
        // columns — but no piggyback histories and no mesh handoffs
        // moving whole units between cells. Everything else keeps the
        // boxed `MobileUnit` fleet. `config.fleet` forces the choice
        // either way (the equivalence suite runs both on the same
        // config).
        let columnar_spec = if config.backbone.is_none() && !piggyback && config.query.is_none() {
            strategy.columnar_spec(&params, protocol_seed)
        } else {
            None
        };
        let use_columnar = match config.fleet {
            Some(FleetBackend::Units) => false,
            Some(FleetBackend::Columnar) => {
                if columnar_spec.is_none() {
                    // Name every disqualifier, not just the tuple of
                    // settings: the caller forced the columnar backend,
                    // so tell them exactly what keeps this configuration
                    // on boxed units.
                    let mut reasons: Vec<String> = Vec::new();
                    if config.backbone.is_some() {
                        reasons.push(
                            "mesh handoffs move whole boxed units between cells".into(),
                        );
                    }
                    if piggyback {
                        reasons.push(
                            "piggybacked hit histories live on boxed units".into(),
                        );
                    }
                    if config.query.is_some() {
                        reasons.push(
                            "the query-result plane attaches to boxed units".into(),
                        );
                    }
                    if strategy.columnar_spec(&params, protocol_seed).is_none() {
                        reasons.push(format!(
                            "strategy {} builds its reports from per-client feedback \
                             state that only boxed units carry",
                            strategy.name()
                        ));
                    }
                    return Err(SimulationError::InvalidConfig(format!(
                        "the columnar fleet cannot host this configuration: {}",
                        reasons.join("; ")
                    )));
                }
                true
            }
            None => columnar_spec.is_some(),
        };
        // Finite capacity runs on either backend with the same policy
        // and the same TS window `w = kL` feeding the window-age rule.
        let cap_spec = config.cache_capacity.map(|cap| CapacitySpec {
            cap,
            policy: config.replacement,
            window: latency.scaled(params.k as f64),
        });
        let mut columnar = if use_columnar {
            let spec = columnar_spec.expect("eligibility was just checked");
            Some(ColumnarFleet::new(config.hotspot_size, spec, cap_spec))
        } else {
            None
        };
        let mut clients = Vec::with_capacity(if use_columnar { 0 } else { config.n_clients });
        let mut sleep_rngs = Vec::with_capacity(config.n_clients);
        let mut query_rngs = Vec::with_capacity(config.n_clients);
        let mut query_planes = Vec::with_capacity(config.n_clients);
        let wake_mode = config.wake_mode.unwrap_or_else(|| {
            if config.mean_sleep_probability() >= HEAP_SLEEP_THRESHOLD {
                WakeMode::Heap
            } else {
                WakeMode::Scan
            }
        });
        let mut wake = WakeSchedule::new(wake_mode, config.n_clients);
        let mut next_wake_hint = Vec::with_capacity(config.n_clients);
        let mut pending_disconnects = Vec::new();
        for idx in 0..config.n_clients as u64 {
            let mut hotspot_rng = config.seed.stream(StreamId::Hotspot { index: idx });
            let hotspot = spec.draw(&mut hotspot_rng);
            // The query plane's workload and draw sequence are a pure
            // function of (seed, QueryPlan{idx}) over the hotspot the
            // item plane already drew — built before the hotspot moves
            // into the unit's config.
            query_planes.push(config.query.map(|qc| {
                QueryPlane::new(
                    &hotspot,
                    qc,
                    config.seed.stream(StreamId::QueryPlan { index: idx }),
                )
            }));
            let mut query_rng = config.seed.stream(StreamId::Queries { index: idx });
            let sleep_probability = match &config.sleep_profile {
                Some(profile) => profile[idx as usize % profile.len()],
                None => params.s,
            };
            let mut sleep_rng = config.seed.stream(StreamId::Sleep { index: idx });
            // Draw the unit's initial sleep run and schedule its first
            // awake interval; units starting asleep are not visited
            // again until they wake. Both fleet backends consume the
            // exact same draws here (one exponential from the query
            // stream, one geometric from the sleep stream), so the
            // backend choice never perturbs the streams.
            let k0 = match &mut columnar {
                Some(fleet) => {
                    fleet.push_client(hotspot, params.lambda, sleep_probability, &mut query_rng);
                    let k0 = fleet.draw_sleep_run(idx as usize, &mut sleep_rng);
                    if k0 > 0 {
                        fleet.enter_sleep(idx as usize);
                    }
                    k0
                }
                None => {
                    let mu_config = MuConfig {
                        id: idx,
                        hotspot,
                        query_rate_per_item: params.lambda,
                        sleep_probability,
                        cache_capacity: config.cache_capacity,
                        replacement: config.replacement,
                        replacement_window: latency.scaled(params.k as f64),
                        piggyback_hits: piggyback,
                        item_universe: Some(params.n_items),
                    };
                    let handler = strategy.make_handler(&params, protocol_seed);
                    let mut mu = MobileUnit::new(mu_config, handler, &mut query_rng);
                    let k0 = mu.draw_sleep_run(&mut sleep_rng);
                    if k0 > 0 {
                        mu.enter_sleep();
                        if stateful {
                            pending_disconnects.push(idx as usize);
                        }
                    }
                    clients.push(mu);
                    k0
                }
            };
            let first_wake = if k0 == u64::MAX {
                u64::MAX
            } else {
                1u64.saturating_add(k0)
            };
            wake.schedule(idx as usize, first_wake);
            next_wake_hint.push(first_wake);
            query_rngs.push(query_rng);
            sleep_rngs.push(sleep_rng);
        }
        let last_settled = vec![0u64; config.n_clients];

        let mut obs = match &config.observe {
            Some(label) => Recorder::enabled(label.clone()),
            None => Recorder::disabled(),
        };
        if obs.is_enabled() {
            // Mesh shards get one extra per-interval column: arrivals
            // by handoff. Standalone schemas are unchanged, keeping
            // every pre-mesh trace artifact byte-identical.
            let mut schema = vec![
                "awake",
                "hits",
                "misses",
                "uplinks",
                "invalidated",
                "drops",
                "report_bits",
                "used_bits",
                "overflow",
                "lost",
                "retries",
            ];
            if config.backbone.is_some() {
                schema.push("migrations");
            }
            obs.series_schema(&schema);
            // ItemTable layout census: every hashed entry is a dense
            // fast-path fallback activation. Columnar slot blocks are
            // dense by construction.
            let dense = if use_columnar {
                config.n_clients
            } else {
                clients.iter().filter(|mu| mu.cache().is_dense()).count()
            };
            obs.add("cache_dense_layouts", dense as u64);
            obs.add("cache_hashed_fallbacks", (config.n_clients - dense) as u64);
            obs.event(
                0,
                "sim_start",
                &[
                    ("strategy", Value::Str(strategy.name().to_string())),
                    (
                        "wake_mode",
                        Value::Str(
                            match wake_mode {
                                WakeMode::Scan => "scan",
                                WakeMode::Heap => "heap",
                            }
                            .to_string(),
                        ),
                    ),
                    ("clients", Value::U64(config.n_clients as u64)),
                    ("n_items", Value::U64(params.n_items)),
                    ("mean_sleep", Value::F64(config.mean_sleep_probability())),
                ],
            );
        }

        let mut update_rng = protocol_seed.stream(StreamId::Updates);
        let update_engine = UpdateEngine::new(params.n_items, params.mu, &mut update_rng);

        // The Zipf pick machinery: one shared rank CDF, one dedicated
        // stream per client. Built even for clients that start asleep —
        // the streams are index-parallel to the fleet and drawn from
        // only at awake arrivals.
        let zipf = config.query_zipf.map(|theta| {
            let picker = ZipfPicker::new(config.hotspot_size, theta);
            let rngs = (0..config.n_clients as u64)
                .map(|idx| config.seed.stream(StreamId::ZipfQuery { index: idx }))
                .collect();
            (picker, rngs)
        });

        let delivery = ReportDelivery::new(config.delivery);
        let delivery_rng = config.seed.stream(StreamId::Custom { tag: 0xDE11 });
        let faults = FaultLayer::new(config.faults.as_ref(), config.seed, config.n_clients);
        let n_slots = config.n_clients;
        Ok(CellSimulation {
            strategy,
            db,
            history,
            server,
            uplink: UplinkProcessor::with_universe(params.n_items),
            channel,
            clock: IntervalClock::new(latency),
            clients,
            columnar,
            wake,
            last_settled,
            pending_disconnects,
            sleep_rngs,
            query_rngs,
            query_planes,
            zipf,
            coop_feed: None,
            coop_stats: CoopStats::default(),
            update_rng,
            update_engine,
            report_bits_total: 0,
            overflow_exchanges: 0,
            registration_messages: 0,
            safety: SafetyStats::default(),
            pending_uplinks: VecDeque::new(),
            sweep_threads: config
                .sweep_threads
                .unwrap_or_else(|| sw_sim::ParallelRunner::from_env().threads()),
            queued_exchanges: HashSet::new(),
            faults,
            delivery,
            delivery_rng,
            energy: EnergyTotals::default(),
            departed: vec![false; n_slots],
            departed_count: 0,
            next_wake_hint,
            newly_migrated: vec![false; n_slots],
            next_client_id: n_slots as u64,
            migration: MigrationStats::default(),
            arrivals_since_step: 0,
            report_digests: VecDeque::new(),
            deferred_control: Vec::new(),
            obs,
            config,
        })
    }

    /// The strategy under simulation.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Read access to the database (tests).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Read access to the boxed client fleet (tests). Empty when the
    /// cell runs the columnar backend — use [`Self::client_slots`] and
    /// [`Self::client_stats`] for backend-independent access.
    pub fn clients(&self) -> &[MobileUnit] {
        &self.clients
    }

    /// Number of client slots in the cell, including departed husks
    /// (slot indices are stable; arrivals append).
    pub fn client_slots(&self) -> usize {
        match &self.columnar {
            Some(fleet) => fleet.len(),
            None => self.clients.len(),
        }
    }

    /// Stats snapshot of the client in slot `idx`, on either fleet
    /// backend (a departed slot reports the zeroed husk stats).
    pub fn client_stats(&self, idx: usize) -> MuStats {
        match &self.columnar {
            Some(fleet) => fleet.stats(idx),
            None => self.clients[idx].stats(),
        }
    }

    /// Whether the cell runs the columnar client backend.
    pub fn is_columnar(&self) -> bool {
        self.columnar.is_some()
    }

    /// Fleet-wide eviction counters: one O(n) fold over the per-client
    /// stats, on either backend. All zeros for unbounded cells.
    fn capacity_totals(&self) -> CapacityStats {
        let mut total = CapacityStats::default();
        let mut tally = |s: &MuStats| {
            total.evictions += s.evictions;
            total.capacity_misses += s.capacity_misses;
            total.evicted_then_requeried += s.evicted_then_requeried;
        };
        match &self.columnar {
            Some(fleet) => fleet.stats_iter().for_each(&mut tally),
            None => self.clients.iter().for_each(|mu| tally(&mu.stats())),
        }
        total
    }

    /// Snapshot of every cache entry stamped exactly at the last
    /// broadcast report time `T_i`: the set this cell can vouch fresh
    /// to a neighbor, because any copy stamped at the report the whole
    /// backbone just heard is provably current as of `T_i`. The mesh
    /// builds these at its barrier and hands each cell the merged
    /// neighbor view via [`Self::install_coop_feed`].
    ///
    /// Mesh shards are always boxed, so only the boxed fleet is
    /// scanned; clients are visited in ascending slot order and items
    /// in sorted order, keeping the snapshot deterministic.
    pub fn coop_directory(&self) -> CoopDirectory {
        let t_last = self.clock.report_time(self.clock.next_index());
        let mut dir = CoopDirectory::new(t_last);
        for mu in &self.clients {
            for item in mu.cache().sorted_items() {
                let entry = mu.cache().peek(item).expect("iterating cached items");
                if entry.timestamp == t_last {
                    dir.insert(item, entry.value);
                }
            }
        }
        dir
    }

    /// Installs the merged neighbor directory the next interval's
    /// misses may be served from (mesh barrier hook).
    pub fn install_coop_feed(&mut self, feed: CoopFeed) {
        self.coop_feed = Some(feed);
    }

    /// Cooperative-miss counters accumulated so far (all zeros unless
    /// `config.coop` armed the path).
    pub fn coop_stats(&self) -> CoopStats {
        self.coop_stats
    }

    /// Query-plane stats for the client in slot `idx` (`None` unless
    /// the cell was configured with [`CellConfig::with_query`]).
    pub fn client_query_stats(&self, idx: usize) -> Option<QueryStats> {
        self.query_planes[idx].as_ref().map(|p| p.stats())
    }

    /// The query plane of the client in slot `idx`, for audits and the
    /// committed-read log (`None` unless the cell was configured with
    /// [`CellConfig::with_query`]).
    pub fn query_plane(&self, idx: usize) -> Option<&QueryPlane> {
        self.query_planes[idx].as_ref()
    }

    fn mu_id(&self, idx: usize) -> u64 {
        match &self.columnar {
            // Columnar cells are standalone: slots are never reassigned,
            // so the id a boxed unit would carry is just the slot index.
            Some(_) => idx as u64,
            None => self.clients[idx].id(),
        }
    }

    fn mu_is_awake(&self, idx: usize) -> bool {
        match &self.columnar {
            Some(fleet) => fleet.is_awake(idx),
            None => self.clients[idx].is_awake(),
        }
    }

    /// Uplink exchanges currently deferred behind the channel budget
    /// (diagnostic: a persistently growing queue means the cell is
    /// provisioned below its steady-state uplink demand).
    pub fn pending_uplink_len(&self) -> usize {
        self.pending_uplinks.len()
    }

    /// Whether an identical exchange is already queued for `idx`. A
    /// client re-querying an item it is still waiting for must not
    /// enqueue (or be served) a second copy of the same fetch.
    fn exchange_queued(&self, idx: usize, item: ItemId) -> bool {
        self.queued_exchanges.contains(&(idx, item))
    }

    fn enqueue_exchange(&mut self, idx: usize, item: ItemId, piggyback: Option<PiggybackInfo>) {
        if self.queued_exchanges.insert((idx, item)) {
            self.pending_uplinks
                .push_back(QueuedExchange { idx, item, piggyback });
        }
    }

    /// Runs one uplink query exchange for client `idx` to completion,
    /// deferral, or abandonment.
    ///
    /// On success the exchange is charged to the channel, the
    /// server-side bookkeeping (adaptive feedback, quasi obligations,
    /// stateful registration) runs, and the answer is installed in the
    /// client's cache. A saturated interval defers the exchange to the
    /// FIFO queue *without charging anything* — the query counts once
    /// in the traffic totals however many intervals it waits. Under the
    /// uplink fault model, each transmitted-but-failed attempt is
    /// retried up to `max_attempts` times with exponentially growing
    /// backoff charged as dead air against the interval budget; failed
    /// attempts burned real airtime and stay charged as traffic.
    fn attempt_uplink_exchange(
        &mut self,
        idx: usize,
        item: ItemId,
        piggyback: Option<PiggybackInfo>,
        i: u64,
        t_i: SimTime,
    ) -> ExchangeOutcome {
        let mu_id = self.mu_id(idx);
        let uplink_model = self.faults.uplink_model();
        let max_attempts = uplink_model.map_or(1, |m| m.max_attempts);
        let mut attempt = 1u32;
        loop {
            if self.channel.send_query_exchange(mu_id, item).is_err() {
                self.enqueue_exchange(idx, item, piggyback);
                return ExchangeOutcome::Saturated;
            }
            let failed = uplink_model.is_some() && self.faults.uplink_attempt_fails(idx);
            if !failed {
                break;
            }
            self.faults.note_uplink_retry();
            if attempt >= max_attempts {
                // Bounded retry exhausted: give the channel back and
                // try again in a later interval.
                self.enqueue_exchange(idx, item, piggyback);
                return ExchangeOutcome::FaultDeferred;
            }
            let backoff = uplink_model
                .expect("a failed attempt implies an uplink model")
                .backoff_base_bits
                << (attempt - 1);
            if self.channel.charge_backoff(backoff).is_err() {
                // The backoff wait would outlast the interval budget.
                self.enqueue_exchange(idx, item, piggyback);
                return ExchangeOutcome::Saturated;
            }
            self.faults.note_backoff_interval();
            attempt += 1;
        }
        let answer = self.uplink.answer(&self.db, item, t_i, piggyback.as_ref());
        self.server
            .note_uplink(mu_id, item, i, t_i, piggyback.as_ref());
        match &mut self.columnar {
            Some(fleet) => fleet.install_answer(idx, answer),
            None => self.clients[idx].install_answer(answer),
        }
        ExchangeOutcome::Done
    }

    /// Runs one broadcast interval; returns the report's size in bits
    /// (zero for the stateful baseline, which sends directed messages
    /// instead).
    pub fn step(&mut self) -> Result<u64, SimulationError> {
        let (i, t_i) = self.clock.tick();
        let from = self.clock.report_time(i - 1);
        self.channel.begin_interval();

        // Observation bookkeeping: cheap register-width locals, dead
        // code when the recorder is disabled (and compiled out entirely
        // without the `observe` feature, where `is_enabled()` is a
        // compile-time `false`).
        let observing = self.obs.is_enabled();
        let overflow_before = self.overflow_exchanges;
        let violations_before = self.safety.violations;
        let faults_before = self.faults.totals();
        // Eviction counters live per client; an O(n) fold before/after
        // catches every eviction this interval caused, including those
        // from the 4a queue drain. Only paid when observing a bounded
        // cell.
        let capacity_before = (observing && self.config.cache_capacity.is_some())
            .then(|| self.capacity_totals());
        let coop_before = self.coop_stats;
        let (mut obs_hits, mut obs_misses) = (0u64, 0u64);
        let (mut obs_invalidated, mut obs_drops) = (0u64, 0u64);
        let (mut obs_false_alarms, mut obs_unmatched) = (0u64, 0u64);
        let mut query_delta = QueryStats::default();

        // 1. Take this interval's wake-ups off the schedule and generate
        // their query arrivals. Each unit drew its whole sleep run when
        // it went under, so sleepers cost nothing here beyond (in scan
        // mode) one sequential wake-time comparison. Either wake mode
        // yields the awake set in ascending client index, preserving the
        // old per-index loop's rng consumption order.
        let mut awake: Vec<usize> = Vec::new();
        self.wake.pop_due(i, &mut awake);
        if self.departed_count > 0 {
            // Departed slots are inert husks; heap mode can still pop
            // their one stale pre-departure entry (heap entries can't
            // be deleted), scan mode never schedules them. Filtering
            // preserves the ascending-index order.
            let departed = &self.departed;
            awake.retain(|&idx| !departed[idx]);
        }
        let zipf = &mut self.zipf;
        for &idx in &awake {
            // Lazily settle the sleep run that just ended.
            let slept = i - self.last_settled[idx] - 1;
            self.last_settled[idx] = i;
            // Zipf skew (`config.query_zipf`): each arrival's hotspot
            // rank comes from the shared CDF on the client's dedicated
            // stream instead of the uniform draw — arrival times stay
            // on the query stream, identically on both backends.
            let mut zipf_pick = zipf.as_mut().map(|(picker, rngs)| {
                let picker = &*picker;
                let rng = &mut rngs[idx];
                move || picker.draw(rng)
            });
            let pick = zipf_pick
                .as_mut()
                .map(|f| f as &mut dyn FnMut() -> usize);
            match &mut self.columnar {
                Some(fleet) => {
                    if slept > 0 {
                        fleet.credit_asleep_intervals(idx, slept);
                    }
                    fleet.begin_awake_interval_skewed(
                        idx,
                        from,
                        t_i,
                        &mut self.query_rngs[idx],
                        pick,
                    );
                }
                None => {
                    if slept > 0 {
                        self.clients[idx].credit_asleep_intervals(slept);
                    }
                    self.clients[idx].begin_awake_interval_skewed(
                        from,
                        t_i,
                        &mut self.query_rngs[idx],
                        pick,
                    );
                }
            }
            // The query plane draws this interval's predicate-query and
            // transaction events from its own stream.
            if let Some(plane) = self.query_planes[idx].as_mut() {
                plane.begin_awake_interval();
            }
        }
        if let Some(registry) = self.server.registry_mut() {
            // Clients announce connects/disconnects; each transition is
            // one control message on the channel. Units that fell asleep
            // after the previous interval disconnect now, waking units
            // (re)connect — same transition count as observing every
            // client's state each interval. A unit that left the cell
            // between intervals was disconnected in the registry at
            // detach time; its control message is charged here, in the
            // first interval with an open budget.
            for id in self.deferred_control.drain(..) {
                let _ = self.channel.send_invalidation(id); // control msg
                self.registration_messages += 1;
            }
            for idx in self.pending_disconnects.drain(..) {
                if self.departed[idx] {
                    continue; // already disconnected at detach
                }
                let id = self.clients[idx].id();
                if registry.is_connected(id) {
                    registry.disconnect(id);
                    let _ = self.channel.send_invalidation(id); // control msg
                    self.registration_messages += 1;
                }
            }
            for &idx in &awake {
                let id = self.clients[idx].id();
                if !registry.is_connected(id) {
                    registry.connect(id);
                    let _ = self.channel.send_invalidation(id); // control msg
                    self.registration_messages += 1;
                    if self.newly_migrated[idx] {
                        // First registration with a server that has
                        // never seen this unit: the stateful baseline's
                        // per-handoff price.
                        self.migration.cross_cell_registrations += 1;
                        self.obs.add("cross_cell_registrations", 1);
                    }
                }
            }
        }

        // 2. Apply this interval's updates; the stateful server fires a
        // directed invalidation message per registered holder.
        let recs = self
            .update_engine
            .advance(&mut self.db, from, t_i, &mut self.update_rng);
        for rec in &recs {
            if let Some(registry) = self.server.registry_mut() {
                let recipients = registry.on_update(rec);
                for _ in &recipients {
                    let _ = self.channel.send_invalidation(rec.item);
                }
            }
            self.server.on_update(rec);
            if let Some(h) = self.history.as_mut() {
                h.record(rec);
            }
        }

        // 3. Build and broadcast the report (skipped by the stateful
        // baseline, whose messages were charged above; the AT-style
        // framing still drives the client algorithm).
        let payload = {
            let _span = self.obs.span("server_build");
            self.server.build(i, t_i, &self.db)
        };
        let is_stateful = self.server.is_stateful();
        // Zero-copy broadcast: the payload is charged by reference (its
        // bit size computed in place) and then lent to every listening
        // client — no per-interval frame clone, no per-client copies.
        let report_bits = if is_stateful {
            // Directed messages were charged above; the size only feeds
            // the energy model's listening window.
            self.channel.encoder().payload_bits(&payload)
        } else {
            let bits = self
                .channel
                .send_report_payload(&payload)
                .map_err(|e| match e {
                    ChannelError::ReportExceedsInterval { needed, capacity } => {
                        SimulationError::ReportTooLarge {
                            bits: needed,
                            capacity,
                        }
                    }
                    other => unreachable!("report send can only fail by size: {other}"),
                })?;
            self.report_bits_total += bits;
            bits
        };
        if self.config.backbone.is_some() {
            // Mesh shard: log this report's checksum so the mesh can
            // compare two cells' recent report histories at a handoff.
            // Pure bookkeeping over the already-built payload — no
            // randomness, no feedback into the simulation.
            let bytes = self.channel.encoder().serialize_payload(&payload);
            self.report_digests.push_back((i, checksum64(&bytes)));
            let retention = self.config.params.k as usize + 4;
            while self.report_digests.len() > retention {
                self.report_digests.pop_front();
            }
        }

        // 4. Awake clients hear the report / their invalidations and
        // answer the interval's queries.
        let process_timer = self.obs.timer("client_process");
        let mut uplink_counts = vec![0u32; awake.len()];
        // 4a. Drain exchanges deferred by earlier saturated intervals,
        // oldest first, before this interval's fresh misses compete for
        // the budget — strict FIFO across intervals. Entries whose
        // client is asleep keep their place; the first renewed
        // saturation stops the drain and the rest wait in order.
        if !self.pending_uplinks.is_empty() {
            let mut queue = std::mem::take(&mut self.pending_uplinks);
            let mut stalled = false;
            while let Some(q) = queue.pop_front() {
                if self.departed[q.idx] {
                    // Tombstone: the client left the cell while its
                    // fetch waited. Nobody is listening for the answer;
                    // discard instead of serving or re-queuing.
                    self.queued_exchanges.remove(&(q.idx, q.item));
                    continue;
                }
                if stalled || !self.mu_is_awake(q.idx) {
                    self.pending_uplinks.push_back(q);
                    continue;
                }
                let slot = awake
                    .binary_search(&q.idx)
                    .expect("an awake client is always in the interval's awake set");
                // Drop the membership mark before the attempt: a
                // deferral re-queues (and re-marks) the same exchange.
                self.queued_exchanges.remove(&(q.idx, q.item));
                match self.attempt_uplink_exchange(q.idx, q.item, q.piggyback, i, t_i) {
                    ExchangeOutcome::Done => uplink_counts[slot] += 1,
                    // Already re-queued by the attempt; keep the
                    // remaining entries behind it, in order.
                    ExchangeOutcome::Saturated => stalled = true,
                    ExchangeOutcome::FaultDeferred => {}
                }
            }
        }
        // Fault injection only attacks the *broadcast* downlink; the
        // stateful baseline's directed invalidations model a reliable
        // connection-oriented link (its consistency story depends on
        // it, §2).
        let faults_active = self.faults.is_active() && !is_stateful;
        // 4b. Decide every client's report fate first: drift (woke too
        // late), loss (fade-out), or corruption (checksum failure) all
        // mean the strategy's recovery path runs at the *next* intact
        // report, exactly as the paper prescribes for a unit that slept
        // through reports. Fates consume the per-client fault streams
        // in ascending index order — the same per-client draw sequence
        // as the old interleaved loop (a client's fate draw always
        // precedes its uplink-retry draws) — and splitting them out
        // leaves the report sweep below entirely free of randomness.
        let mut heard: Vec<usize> = Vec::with_capacity(awake.len());
        // Serialized report + checksum, computed lazily at most once
        // per interval, only when a corruption fate needs real bytes to
        // flip.
        let mut wire_check: Option<(Vec<u8>, u64)> = None;
        for (slot, &idx) in awake.iter().enumerate() {
            if faults_active {
                let delivery = self.delivery;
                let fate = self
                    .faults
                    .report_fate(idx, i, |drift| delivery.misses_with_drift(drift));
                if fate.is_missed() {
                    if fate == ReportFate::Corrupted {
                        // Demonstrate detection on real bytes: flip one
                        // bit of the serialized report and require the
                        // checksum to catch it. An undetected flip
                        // would mean a half-applied report.
                        let (bytes, clean) = wire_check.get_or_insert_with(|| {
                            let b = self.channel.encoder().serialize_payload(&payload);
                            let c = checksum64(&b);
                            (b, c)
                        });
                        let mut damaged = bytes.clone();
                        let bit = self
                            .faults
                            .corrupt_bit_index(idx, damaged.len() as u64 * 8);
                        flip_bit(&mut damaged, bit);
                        if checksum64(&damaged) == *clean {
                            self.faults.note_undetected_corruption();
                        }
                    }
                    match &mut self.columnar {
                        Some(fleet) => fleet.miss_report(idx),
                        None => self.clients[idx].miss_report(),
                    }
                    if let Some(plane) = self.query_planes[idx].as_mut() {
                        plane.on_report_missed();
                    }
                    if observing {
                        self.obs.event(
                            i,
                            "report_missed",
                            &[
                                ("client", Value::U64(idx as u64)),
                                (
                                    "fate",
                                    Value::Str(
                                        match fate {
                                            ReportFate::Lost => "lost",
                                            ReportFate::Corrupted => "corrupted",
                                            ReportFate::DriftMissed => "drift",
                                            ReportFate::Heard => unreachable!(),
                                        }
                                        .to_string(),
                                    ),
                                ),
                            ],
                        );
                    }
                    continue;
                }
            }
            heard.push(slot);
        }

        // 4c. The report sweep: every listening client applies the one
        // shared payload to its own cache and collects its fetch list.
        // The sweep touches only per-client state and draws no
        // randomness, so it fans out over disjoint contiguous client
        // ranges when the cell is big enough — bit-identical at any
        // worker count because the per-client work is independent and
        // the results are merged in ascending order below.
        let results: Vec<SweepItem> = if let Some(fleet) = &mut self.columnar {
            fleet.sweep(
                &heard,
                &awake,
                &payload,
                observing,
                self.sweep_threads,
                SWEEP_PAR_MIN,
            )
        } else if self.sweep_threads > 1 && heard.len() >= SWEEP_PAR_MIN {
                let workers = self.sweep_threads.min(heard.len());
                let chunk_len = heard.len().div_ceil(workers);
                let newly_migrated = &self.newly_migrated;
                let payload_ref = &payload;
                let awake_ref = &awake;
                let mut rest: &mut [MobileUnit] = &mut self.clients;
                let mut base = 0usize;
                let mut out: Vec<SweepItem> = Vec::with_capacity(heard.len());
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for chunk in heard.chunks(chunk_len) {
                        let last_idx = awake_ref[*chunk.last().expect("chunks are non-empty")];
                        let (mine, tail) = rest.split_at_mut(last_idx + 1 - base);
                        let mine_base = base;
                        rest = tail;
                        base = last_idx + 1;
                        handles.push(scope.spawn(move || {
                            let mut items = Vec::with_capacity(chunk.len());
                            for &slot in chunk {
                                let idx = awake_ref[slot];
                                items.push(sweep_client(
                                    &mut mine[idx - mine_base],
                                    slot,
                                    observing,
                                    newly_migrated[idx],
                                    payload_ref,
                                ));
                            }
                            items
                        }));
                    }
                    for h in handles {
                        out.extend(h.join().expect("sweep worker panicked"));
                    }
                });
                out
            } else {
                heard
                    .iter()
                    .map(|&slot| {
                        let idx = awake[slot];
                        sweep_client(
                            &mut self.clients[idx],
                            slot,
                            observing,
                            self.newly_migrated[idx],
                            &payload,
                        )
                    })
                    .collect()
            };

        // 4d. Sequential merge in ascending client order: handoff drop
        // accounting, observation deltas, and the uplink exchanges —
        // everything that charges the shared channel, draws randomness,
        // or emits events.
        for sw in results {
            let slot = sw.slot;
            let idx = awake[slot];
            let outcome = sw.outcome;
            let mu_id = self.mu_id(idx);
            if let Some(pre_len) = sw.migrated_pre_len {
                self.newly_migrated[idx] = false;
                let dropped_all = outcome
                    .outcome
                    .as_ref()
                    .is_some_and(|po| po.dropped_all);
                if dropped_all && pre_len > 0 {
                    self.migration.handoff_drops += 1;
                    self.obs.add("handoff_drops", 1);
                }
            }
            if observing {
                if let Some(po) = &outcome.outcome {
                    obs_invalidated += po.invalidated.len() as u64;
                    obs_drops += po.dropped_all as u64;
                    // The last-report time is the false-alarm reference
                    // point: an invalidation is *false* iff the item did
                    // not actually change since this client last heard a
                    // report (SIG's diagnosis risk, §6).
                    if let Some((_, Some(t_l))) = &sw.pre {
                        for &item in &po.invalidated {
                            if self.db.updated_at(item) <= *t_l {
                                obs_false_alarms += 1;
                            }
                        }
                    }
                }
                let unmatched = match &self.columnar {
                    Some(fleet) => fleet.last_unmatched_subsets(idx),
                    None => self.clients[idx].last_unmatched_subsets(),
                };
                if let Some(u) = unmatched {
                    obs_unmatched += u as u64;
                }
            }
            for (item, piggyback) in outcome.uplink_requests {
                if self.exchange_queued(idx, item) {
                    // The same fetch is already waiting from an earlier
                    // interval; answering it once is enough.
                    continue;
                }
                // Cooperative miss path: a neighbor cell snapshotted a
                // copy of this item stamped at the last report, and the
                // report this client *just heard* (everything in 4d
                // heard an intact one) can vouch nothing changed since.
                // Served copies cost `b_coop` sidelink bits instead of
                // an uplink exchange; hit/miss counts are untouched
                // (the miss already counted in the sweep) and the
                // installed entry faces the same safety audit as any
                // uplink answer. Mesh shards are always boxed, so the
                // direct `clients[idx]` install is safe here.
                if let (Some(coop), Some(feed)) =
                    (self.config.coop, self.coop_feed.as_ref())
                {
                    match feed.get(item) {
                        Some(value)
                            if coop_vouch(
                                &payload,
                                time_to_micros(
                                    feed.stamp.expect("a holding feed carries its stamp"),
                                ),
                                item,
                            ) =>
                        {
                            self.coop_stats.coop_served += 1;
                            self.coop_stats.coop_bits += coop.b_coop;
                            self.clients[idx].install_answer(QueryAnswer {
                                item,
                                value,
                                timestamp: t_i,
                            });
                            continue;
                        }
                        _ => self.coop_stats.coop_declined += 1,
                    }
                }
                match self.attempt_uplink_exchange(idx, item, piggyback, i, t_i) {
                    ExchangeOutcome::Done => uplink_counts[slot] += 1,
                    ExchangeOutcome::Saturated => {
                        // First deferral of a fresh exchange: count the
                        // overage once (retries are the same exchange).
                        self.overflow_exchanges += 1;
                        if observing {
                            self.obs.event(
                                i,
                                "overflow",
                                &[("client", Value::U64(mu_id)), ("item", Value::U64(item))],
                            );
                        }
                    }
                    ExchangeOutcome::FaultDeferred => {}
                }
            }
            // The query plane's footprint check runs against the item
            // cache the strategy handler just processed; its fetch list
            // is served over the same uplink (and the same budget) as
            // the item plane's misses, then the settle half materializes
            // entries and resolves transaction reads. All RNG-free, so
            // the sweep/merge split keeps runs byte-identical at any
            // `SW_THREADS`.
            if let Some(mut plane) = self.query_planes[idx].take() {
                let before = plane.stats();
                let check = plane.observe_report(self.clients[idx].cache(), t_i);
                for item in check.fetch {
                    if self.exchange_queued(idx, item) {
                        // The same fetch is already waiting from an
                        // earlier interval; answering it once is enough.
                        continue;
                    }
                    match self.attempt_uplink_exchange(idx, item, None, i, t_i) {
                        ExchangeOutcome::Done => uplink_counts[slot] += 1,
                        ExchangeOutcome::Saturated => {
                            // The entry stays unmaterialized (a txn read
                            // aborts conservatively); count the overage
                            // like any deferred exchange.
                            self.overflow_exchanges += 1;
                        }
                        ExchangeOutcome::FaultDeferred => {}
                    }
                }
                plane.settle(self.clients[idx].cache(), t_i);
                if observing {
                    let mut after = plane.stats();
                    let b = before;
                    after.queries_posed -= b.queries_posed;
                    after.hits -= b.hits;
                    after.misses -= b.misses;
                    after.entries_invalidated -= b.entries_invalidated;
                    after.entries_reverified -= b.entries_reverified;
                    after.fetch_items -= b.fetch_items;
                    after.txns_begun -= b.txns_begun;
                    after.txn_commits -= b.txn_commits;
                    after.txn_aborts -= b.txn_aborts;
                    query_delta.absorb(&after);
                }
                self.query_planes[idx] = Some(plane);
            }
            if let Some((pre_stats, _)) = sw.pre {
                let s = self.client_stats(idx);
                obs_hits += s.hit_events - pre_stats.hit_events;
                obs_misses += s.miss_events - pre_stats.miss_events;
            }
        }
        self.obs.finish(process_timer);

        // 5. Energy accounting (§9/§10): asleep units pay sleep energy;
        // awake units listen for the report (delivery-mode dependent),
        // transmit their queries, receive their answers, and doze the
        // rest of the interval.
        {
            let model = self.config.energy_model;
            let interval = SimDuration::from_secs(self.config.params.latency_secs);
            // One O(1) charge settles the whole sleeping population for
            // this interval (sleep power is linear in time). Departed
            // slots are husks, not sleepers — nobody pays for them.
            let asleep = self.client_slots() - self.departed_count - awake.len();
            if asleep > 0 {
                self.energy
                    .add_sleep(&model, interval.scaled(asleep as f64));
            }
            let report_tx =
                SimDuration::from_secs(self.channel.transmission_secs(report_bits));
            let per_query_tx = SimDuration::from_secs(
                self.channel
                    .transmission_secs(self.config.params.query_bits as u64),
            );
            let per_answer_rx = SimDuration::from_secs(
                self.channel
                    .transmission_secs(self.config.params.answer_bits as u64),
            );
            // `uplink_counts` is parallel to the awake set, in ascending
            // client order — the delivery rng draws in the same order as
            // the old full-fleet loop.
            for &misses in &uplink_counts {
                let outcome = self.delivery.deliver(t_i, report_tx, &mut self.delivery_rng);
                let active = SimDuration::from_secs(
                    (outcome.listening.as_secs()
                        + misses as f64 * (per_query_tx.as_secs() + per_answer_rx.as_secs()))
                    .min(interval.as_secs()),
                );
                self.energy.add_rx(
                    &model,
                    SimDuration::from_secs(
                        (outcome.listening.as_secs() + misses as f64 * per_answer_rx.as_secs())
                            .min(interval.as_secs()),
                    ),
                );
                self.energy
                    .add_tx(&model, per_query_tx.scaled(misses as f64));
                self.energy
                    .add_doze(&model, interval - active.min(interval));
            }
            if observing {
                // Radio-state transition census (§9/§10): how many
                // client-intervals each energy state absorbed.
                self.obs.add("energy_sleep_intervals", asleep as u64);
                self.obs.add("energy_rx_intervals", awake.len() as u64);
                let tx: u64 = uplink_counts.iter().map(|&c| c as u64).sum();
                self.obs.add("energy_tx_queries", tx);
            }
        }

        // 6. Safety invariant: every cache entry's value must match the
        // item's historical value at the entry's validity timestamp.
        if let Some(history) = &self.history {
            match &self.columnar {
                Some(fleet) => fleet.for_each_cached_entry(|item, value, timestamp| {
                    self.safety.entries_checked += 1;
                    if !history.is_consistent(item, value, timestamp) {
                        self.safety.violations += 1;
                    }
                }),
                None => {
                    for mu in &self.clients {
                        for item in mu.cache().sorted_items() {
                            let entry = mu.cache().peek(item).expect("iterating cached items");
                            self.safety.entries_checked += 1;
                            if !history.is_consistent(item, entry.value, entry.timestamp) {
                                self.safety.violations += 1;
                            }
                        }
                    }
                }
            }
            // Query-result rows are audited by the same rule: every
            // materialized footprint row must still match the item's
            // historical value at its verification timestamp. A stale
            // row is a stale *query answer*, so it counts against the
            // owning strategy's safety contract exactly like a stale
            // item-cache entry.
            for plane in self.query_planes.iter().flatten() {
                for entry in plane.cache().iter() {
                    for row in &entry.rows {
                        self.safety.entries_checked += 1;
                        if !history.is_consistent(row.item, row.value, row.timestamp) {
                            self.safety.violations += 1;
                        }
                    }
                }
            }
            if observing {
                // Stale entries the strategy validated anyway — SIG's
                // false-validation risk made visible per interval.
                self.obs.add(
                    "safety_false_validations",
                    self.safety.violations - violations_before,
                );
            }
            // The no-stale-reads guarantee is absolute for never-stale
            // strategies: abort at the first false validation instead
            // of averaging it into a rate. SIG/HYB keep counting (their
            // contract is a bounded rate), quasi-copies are stale by
            // design.
            if self.safety.violations > violations_before
                && self.strategy.safety_expectation() == SafetyExpectation::NeverStale
            {
                return Err(SimulationError::SafetyViolated {
                    strategy: self.strategy.name(),
                    interval: i,
                });
            }
        }

        // 7. Period boundaries and log hygiene.
        if let Some((default_k, exceptions)) = self.server.end_period_if_due(
            i,
            &mut self.uplink,
            &mut self.db,
            SimDuration::from_secs(self.config.params.latency_secs),
        ) {
            if observing {
                self.obs.event(
                    i,
                    "adaptive_period",
                    &[
                        ("default_k", Value::U64(default_k as u64)),
                        ("exceptions", Value::U64(exceptions as u64)),
                    ],
                );
            }
        }
        self.db.prune_log(t_i);

        // 8. Each awake unit draws its next sleep run and schedules its
        // wake-up: a run of k > 0 means the unit is absent until
        // interval i+1+k (and, stateful, disconnects at i+1). Units
        // drawing the never-wake sentinel leave the schedule for good.
        for &idx in &awake {
            let k = match &mut self.columnar {
                Some(fleet) => {
                    let k = fleet.draw_sleep_run(idx, &mut self.sleep_rngs[idx]);
                    if k > 0 {
                        fleet.enter_sleep(idx);
                    }
                    k
                }
                None => {
                    let k = self.clients[idx].draw_sleep_run(&mut self.sleep_rngs[idx]);
                    if k > 0 {
                        self.clients[idx].enter_sleep();
                        if is_stateful {
                            self.pending_disconnects.push(idx);
                        }
                    }
                    k
                }
            };
            let next_wake = if k == u64::MAX {
                u64::MAX
            } else {
                (i + 1).saturating_add(k)
            };
            if observing && k == u64::MAX {
                self.obs.add("never_wake_draws", 1);
            }
            self.wake.schedule(idx, next_wake);
            self.next_wake_hint[idx] = next_wake;
        }

        if observing {
            let uplinks: u64 = uplink_counts.iter().map(|&c| c as u64).sum();
            let overflow = self.overflow_exchanges - overflow_before;
            let ft = self.faults.totals();
            self.obs.add("intervals", 1);
            self.obs.add("updates_applied", recs.len() as u64);
            self.obs.add("overflow_exchanges", overflow);
            self.obs.add("sig_false_alarms", obs_false_alarms);
            self.obs.add("sig_unmatched_subsets", obs_unmatched);
            if self.config.query.is_some() {
                // The query-plane counter family mirrors the item-plane
                // one; absent (and traces unchanged) unless a query
                // config is armed.
                self.obs.add("query_posed", query_delta.queries_posed);
                self.obs.add("query_hits", query_delta.hits);
                self.obs.add("query_misses", query_delta.misses);
                self.obs.add("query_invalidated", query_delta.entries_invalidated);
                self.obs.add("query_reverified", query_delta.entries_reverified);
                self.obs.add("query_txn_commits", query_delta.txn_commits);
                self.obs.add("query_txn_aborts", query_delta.txn_aborts);
            }
            if self.faults.is_active() {
                // The fault event family: counters stay absent (and
                // faultless trace summaries stay byte-identical) unless
                // a plan is actually armed.
                self.obs
                    .add("reports_lost", ft.reports_lost - faults_before.reports_lost);
                self.obs.add(
                    "frames_corrupted",
                    ft.frames_corrupted - faults_before.frames_corrupted,
                );
                self.obs.add(
                    "drift_missed_reports",
                    ft.drift_missed_reports - faults_before.drift_missed_reports,
                );
                self.obs.add(
                    "uplink_retries",
                    ft.uplink_retries - faults_before.uplink_retries,
                );
                self.obs.add(
                    "backoff_intervals",
                    ft.backoff_intervals - faults_before.backoff_intervals,
                );
                // Every whole-cache drop this interval followed a
                // report gap (sleep- or fault-induced): the recovery
                // cost the fig_loss sweep plots.
                self.obs.add("cache_drops_on_gap", obs_drops);
            }
            if let Some(before) = capacity_before {
                // The eviction-statistics family: absent (and traces
                // unchanged) unless the cell bounds its caches.
                let after = self.capacity_totals();
                self.obs
                    .add("capacity_evictions", after.evictions - before.evictions);
                self.obs.add(
                    "capacity_misses",
                    after.capacity_misses - before.capacity_misses,
                );
                self.obs.add(
                    "evicted_then_requeried",
                    after.evicted_then_requeried - before.evicted_then_requeried,
                );
            }
            if self.config.coop.is_some() {
                self.obs
                    .add("coop_served", self.coop_stats.coop_served - coop_before.coop_served);
                self.obs
                    .add("coop_bits", self.coop_stats.coop_bits - coop_before.coop_bits);
                self.obs.add(
                    "coop_declined",
                    self.coop_stats.coop_declined - coop_before.coop_declined,
                );
            }
            self.obs.record("report_bits", report_bits);
            self.obs.record("awake_clients", awake.len() as u64);
            self.obs.record("uplinks_per_interval", uplinks);
            self.obs.record("used_bits", self.channel.budget().used);
            let mut row = vec![
                awake.len() as u64,
                obs_hits,
                obs_misses,
                uplinks,
                obs_invalidated,
                obs_drops,
                report_bits,
                self.channel.budget().used,
                overflow,
                ft.reports_missed_total() - faults_before.reports_missed_total(),
                ft.uplink_retries - faults_before.uplink_retries,
            ];
            if self.config.backbone.is_some() {
                // The mesh series column: units that arrived by handoff
                // at the barrier preceding this interval.
                row.push(self.arrivals_since_step);
            }
            self.obs.series_row(i, &row);
        }
        self.arrivals_since_step = 0;

        Ok(report_bits)
    }

    /// Runs `intervals` broadcast intervals and summarizes.
    pub fn run(&mut self, intervals: u64) -> Result<SimulationReport, SimulationError> {
        for _ in 0..intervals {
            self.step()?;
        }
        Ok(self.report())
    }

    /// Zeroes every metric (client stats, traffic, report bits, safety
    /// counters) without touching caches or protocol state — call after
    /// a warm-up phase so cold-start misses don't bias the measurement.
    /// The warm-up bias matters most for effectiveness: with `h` close
    /// to 1, Eq. 9's `1/(1−h)` amplifies even a 1% cold-cache miss
    /// inflation severalfold.
    pub fn reset_metrics(&mut self) {
        match &mut self.columnar {
            Some(fleet) => fleet.reset_stats(),
            None => {
                for mu in &mut self.clients {
                    mu.reset_stats();
                }
            }
        }
        // Sleep runs straddling the reset must not credit their
        // pre-reset intervals into the fresh stats.
        let now = self.clock.next_index();
        for settled in &mut self.last_settled {
            *settled = (*settled).max(now);
        }
        for plane in self.query_planes.iter_mut().flatten() {
            plane.reset_stats();
        }
        self.channel.reset_totals();
        self.report_bits_total = 0;
        self.overflow_exchanges = 0;
        self.registration_messages = 0;
        self.energy = EnergyTotals::default();
        self.safety = SafetyStats::default();
        self.migration = MigrationStats::default();
        // Eviction counters live in the per-client stats and were
        // zeroed above; the sidelink counters are cell-level.
        self.coop_stats = CoopStats::default();
        // Counters only: the fault processes (burst state, drift) keep
        // evolving across the warm-up boundary, like every other
        // random stream.
        self.faults.reset_totals();
        // The observation recorder is deliberately *not* reset: a trace
        // that covers warm-up is a feature (the cold-start transient is
        // exactly what a per-interval series makes visible), and the
        // series carries absolute interval indices either way.
    }

    /// Runs `warmup` unmeasured intervals, resets the metrics, then
    /// runs `intervals` measured ones.
    pub fn run_measured(
        &mut self,
        warmup: u64,
        intervals: u64,
    ) -> Result<SimulationReport, SimulationError> {
        for _ in 0..warmup {
            self.step()?;
        }
        self.reset_metrics();
        self.run(intervals)
    }

    /// Snapshot of the metrics so far.
    pub fn report(&self) -> SimulationReport {
        let mut hit_events = 0;
        let mut miss_events = 0;
        let mut queries_posed = 0;
        let mut cache_drops = 0;
        let mut items_invalidated = 0;
        let mut tally = |s: &MuStats| {
            hit_events += s.hit_events;
            miss_events += s.miss_events;
            queries_posed += s.queries_posed;
            cache_drops += s.cache_drops;
            items_invalidated += s.items_invalidated;
        };
        match &self.columnar {
            Some(fleet) => fleet.stats_iter().for_each(&mut tally),
            None => self.clients.iter().for_each(|mu| tally(&mu.stats())),
        }
        let mut query = QueryStats::default();
        for plane in self.query_planes.iter().flatten() {
            query.absorb(&plane.stats());
        }
        let params = &self.config.params;
        SimulationReport {
            strategy: self.strategy.name(),
            intervals: self.channel.intervals_elapsed(),
            n_clients: self.client_slots() - self.departed_count,
            hit_events,
            miss_events,
            queries_posed,
            cache_drops,
            items_invalidated,
            report_bits_total: self.report_bits_total,
            traffic: self.channel.totals().clone(),
            overflow_exchanges: self.overflow_exchanges,
            registration_messages: self.registration_messages,
            energy: self.energy,
            safety: self.safety,
            query,
            migration: self.migration,
            faults: self.faults.totals(),
            capacity: self.capacity_totals(),
            coop: self.coop_stats,
            interval_bits: params.latency_secs * params.bandwidth_bps as f64,
            per_query_bits: (params.query_bits + params.answer_bits) as f64,
            t_max_analytic: sw_analysis::throughput_max(params),
            observe: self.obs.snapshot(),
        }
    }

    /// The observation snapshot captured so far (`None` unless the run
    /// was configured with an observe label *and* the `observe` cargo
    /// feature is on). Also reachable via
    /// [`SimulationReport::observe`]; this accessor additionally works
    /// when a run aborted before producing a report.
    pub fn observe_snapshot(&self) -> Option<sw_observe::ObserveSnapshot> {
        self.obs.snapshot()
    }

    /// Current per-item adaptive window (adaptive strategy only; test
    /// hook).
    pub fn adaptive_window(&self, item: ItemId) -> Option<u32> {
        self.server.adaptive_window(item)
    }

    /// The interval index the next [`step`](Self::step) will simulate.
    /// Mesh barriers use it as the shared absolute clock.
    pub fn next_interval(&self) -> u64 {
        // The clock's stored index is the last interval ticked.
        self.clock.next_index() + 1
    }

    /// The cell's configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// Handoff counters accumulated so far (all zero for standalone
    /// cells).
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration
    }

    /// Number of units currently present (live slots, excluding
    /// departed husks).
    pub fn present_clients(&self) -> usize {
        self.client_slots() - self.departed_count
    }

    /// The rolling `(interval, report checksum)` log (mesh shards only;
    /// empty for standalone cells). Newest last.
    pub fn report_digests(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.report_digests.iter().copied()
    }

    /// Whether two cells' report histories agree over the overlapping
    /// suffix of their digest logs. This is the paper's "has the new
    /// cell been broadcasting the same invalidation information?" test
    /// behind the TS handoff rule: with a shared backbone the static
    /// strategies' reports coincide and a migrating unit's window
    /// arithmetic stays valid, but adaptive/quasi builders fold local
    /// query feedback into their reports, so their histories (and hence
    /// a traveler's assumptions) can genuinely diverge. No overlap —
    /// e.g. one cell just started logging — counts as agreement: the
    /// gap rule alone then decides, exactly as for a freshly woken
    /// sleeper.
    pub fn report_history_agrees(&self, other: &CellSimulation) -> bool {
        let mut mine = self.report_digests.iter().rev().peekable();
        let mut theirs = other.report_digests.iter().rev().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (Some(&&(ia, da)), Some(&&(ib, db))) => {
                    if ia == ib {
                        if da != db {
                            return false;
                        }
                        mine.next();
                        theirs.next();
                    } else if ia > ib {
                        mine.next();
                    } else {
                        theirs.next();
                    }
                }
                _ => return true,
            }
        }
    }

    /// Detaches the unit in slot `idx` for a handoff, returning the
    /// traveling client. The slot is replaced by an inert husk (zero
    /// query rate, permanently asleep, never scheduled) and marked
    /// departed; slots are never reused, so every index-parallel vector
    /// and outstanding heap entry stays valid.
    ///
    /// Under the stateful baseline the registry drops the unit
    /// immediately (the server learns of the disconnect at the
    /// boundary), but the directed control message it costs is charged
    /// against the *next* interval's budget — the current one is
    /// already settled.
    ///
    /// # Panics
    ///
    /// Panics if the slot already departed.
    pub fn detach_client(&mut self, idx: usize) -> HandoffClient {
        assert!(
            self.columnar.is_none(),
            "handoffs move whole boxed units; mesh shards (backbone set) \
             never construct the columnar fleet"
        );
        assert!(!self.departed[idx], "slot {idx} already departed");
        // The husk: never queries, never wakes, caches nothing. Its
        // RNG stream is a throwaway — the husk draws nothing, and the
        // departing unit keeps its real streams.
        let params = &self.config.params;
        let husk_config = MuConfig {
            id: u64::MAX,
            hotspot: vec![0],
            query_rate_per_item: 0.0,
            sleep_probability: 1.0,
            cache_capacity: self.config.cache_capacity,
            replacement: self.config.replacement,
            replacement_window: SimDuration::from_secs(params.latency_secs)
                .scaled(params.k as f64),
            piggyback_hits: false,
            item_universe: Some(params.n_items),
        };
        let handler = Strategy::NoCache.make_handler(params, self.config.protocol_seed());
        let mut throwaway = MasterSeed(0).stream(StreamId::Custom { tag: 0xDEAD });
        let mut husk = MobileUnit::new(husk_config, handler, &mut throwaway);
        husk.enter_sleep();

        let mu = std::mem::replace(&mut self.clients[idx], husk);
        let query_rng = std::mem::replace(
            &mut self.query_rngs[idx],
            MasterSeed(0).stream(StreamId::Custom { tag: 0xDEAD }),
        );
        let sleep_rng = std::mem::replace(
            &mut self.sleep_rngs[idx],
            MasterSeed(0).stream(StreamId::Custom { tag: 0xDEAD }),
        );
        // The query plane does not travel: config::validate rejects
        // query + backbone, so a detaching slot never carries one. The
        // take keeps the husk invariant (`None` everywhere) honest.
        self.query_planes[idx] = None;
        let next_wake = self.next_wake_hint[idx];
        self.departed[idx] = true;
        self.departed_count += 1;
        self.newly_migrated[idx] = false;
        self.wake.schedule(idx, u64::MAX);
        self.next_wake_hint[idx] = u64::MAX;
        // A queued exchange belongs to the unit, not the slot; it
        // re-queries from its destination cell at its next miss. The
        // queue entries become tombstones (`departed[idx]` is set) that
        // the FIFO drain discards when it reaches them — detaching is
        // O(1) in the queue length where it used to be a full retain
        // scan, which went quadratic for mesh detaches at large fleets.
        self.pending_disconnects.retain(|&p| p != idx);
        if let Some(registry) = self.server.registry_mut() {
            let id = mu.id();
            if registry.is_connected(id) {
                registry.disconnect(id);
                self.deferred_control.push(id);
            }
        }
        self.migration.migrations_out += 1;
        self.obs.add("migrations_out", 1);
        HandoffClient {
            mu,
            query_rng,
            sleep_rng,
            next_wake,
            last_settled: self.last_settled[idx],
        }
    }

    /// Attaches a traveling unit to this cell, appending a fresh slot,
    /// and returns its new index.
    ///
    /// `histories_agree` is the caller's verdict on whether the source
    /// and destination cells broadcast the same invalidation
    /// information (see [`report_history_agrees`]
    /// (Self::report_history_agrees)); when they diverge the carried
    /// cache is unconditionally dropped — no report from *this* cell
    /// can vouch for entries validated against a different history.
    /// When the histories agree, the cache rides along and the unit's
    /// own strategy rules decide its fate at the first report heard
    /// here (the handoff is exactly a sleep gap: AT drops everything
    /// regardless, TS keeps entries iff the gap stayed inside `w`, SIG
    /// re-diagnoses by signature, the stateful baseline re-registers).
    ///
    /// The arrival enforces a one-interval transit blackout: the unit
    /// cannot hear the report already in flight at the barrier it
    /// crossed, so its first audible report is the following one.
    pub fn attach_client(&mut self, h: HandoffClient, histories_agree: bool) -> usize {
        assert!(
            self.columnar.is_none(),
            "handoffs move whole boxed units; mesh shards (backbone set) \
             never construct the columnar fleet"
        );
        let HandoffClient {
            mut mu,
            query_rng,
            sleep_rng,
            next_wake,
            last_settled,
        } = h;
        let idx = self.clients.len();
        let id = self.next_client_id;
        self.next_client_id += 1;
        mu.reassign_id(id);
        if !histories_agree {
            let dropped = mu.drop_cache_for_handoff();
            if dropped > 0 {
                self.migration.handoff_drops += 1;
                self.obs.add("handoff_drops", 1);
            }
        }
        // Transit blackout: the unit is in transit for the whole next
        // interval (`clock.next_index()` is the index of the *last*
        // report broadcast; the transit interval is the one after it)
        // and misses that interval's report in both cells. It behaves
        // exactly like a sleeper over the blackout — `newly_migrated`
        // defers the drop-vs-keep verdict to its strategy at the first
        // report it actually hears, which closes a gap of 2L.
        let transit = self.clock.next_index() + 1;
        let wake = next_wake.max(transit.saturating_add(1));
        mu.enter_sleep();
        self.clients.push(mu);
        self.query_rngs.push(query_rng);
        self.query_planes.push(None);
        self.sleep_rngs.push(sleep_rng);
        self.last_settled.push(last_settled.max(transit));
        self.departed.push(false);
        self.newly_migrated.push(true);
        self.next_wake_hint.push(wake);
        self.wake.push_client(idx, wake);
        self.faults.push_client(self.config.seed, idx, transit);
        // Stateful baseline: the new id registers at the unit's wake-up
        // reconnect, like any returning sleeper — the reconnect loop
        // sees an unknown id and charges the registration there.
        self.migration.migrations_in += 1;
        self.arrivals_since_step += 1;
        self.obs.add("migrations", 1);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_workload::ScenarioParams;

    fn quick_params() -> ScenarioParams {
        // Small, fast parameters for unit tests: lively queries, visible
        // updates.
        let mut p = ScenarioParams::scenario1();
        p.n_items = 200;
        p.lambda = 0.05;
        p.mu = 1e-3;
        p.k = 10;
        p
    }

    fn config(s: f64) -> CellConfig {
        CellConfig::new(quick_params().with_s(s))
            .with_clients(8)
            .with_hotspot_size(20)
            .with_seed(42)
    }

    #[test]
    fn at_simulation_runs_and_hits() {
        let mut sim = CellSimulation::new(config(0.0), Strategy::AmnesicTerminals).unwrap();
        let report = sim.run(100).unwrap();
        assert_eq!(report.intervals, 100);
        assert!(report.query_events() > 0, "workaholics must query");
        assert!(
            report.hit_ratio() > 0.5,
            "awake clients should mostly hit, got {}",
            report.hit_ratio()
        );
    }

    #[test]
    fn all_static_strategies_run() {
        for s in [
            Strategy::BroadcastTimestamps,
            Strategy::AmnesicTerminals,
            Strategy::Signatures,
            Strategy::NoCache,
        ] {
            let mut sim = CellSimulation::new(config(0.3), s).unwrap();
            let report = sim.run(50).unwrap();
            assert_eq!(report.strategy, s.name());
            assert_eq!(report.intervals, 50);
        }
    }

    #[test]
    fn no_cache_never_hits() {
        let mut sim = CellSimulation::new(config(0.0), Strategy::NoCache).unwrap();
        let report = sim.run(50).unwrap();
        assert_eq!(report.hit_events, 0);
        assert!(report.miss_events > 0);
        assert_eq!(report.report_bits_total, 0, "NC broadcasts nothing");
    }

    #[test]
    fn sleepier_cells_hit_less_with_at() {
        let run = |s: f64| {
            let mut sim = CellSimulation::new(config(s), Strategy::AmnesicTerminals).unwrap();
            sim.run(300).unwrap().hit_ratio()
        };
        let workaholic = run(0.0);
        let sleeper = run(0.7);
        assert!(
            workaholic > sleeper + 0.1,
            "AT: h(s=0)={workaholic} must exceed h(s=0.7)={sleeper}"
        );
    }

    #[test]
    fn ts_survives_naps_that_kill_at() {
        let run = |strategy| {
            let mut sim = CellSimulation::new(config(0.5), strategy).unwrap();
            sim.run(300).unwrap().hit_ratio()
        };
        let ts = run(Strategy::BroadcastTimestamps);
        let at = run(Strategy::AmnesicTerminals);
        assert!(ts > at, "TS {ts} must beat AT {at} for sleepers");
    }

    #[test]
    fn safety_invariant_holds_for_ts_and_at() {
        for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
            let cfg = config(0.4).with_safety_checking();
            let mut sim = CellSimulation::new(cfg, strategy).unwrap();
            let report = sim.run(200).unwrap();
            assert!(report.safety.entries_checked > 0);
            assert_eq!(
                report.safety.violations, 0,
                "{strategy:?} must never validate a stale entry"
            );
        }
    }

    #[test]
    fn sig_violations_are_rare() {
        let cfg = config(0.4).with_safety_checking();
        let mut sim = CellSimulation::new(cfg, Strategy::Signatures).unwrap();
        let report = sim.run(200).unwrap();
        assert!(
            report.safety.violation_rate() < 0.01,
            "SIG stale rate {} should be well under 1%",
            report.safety.violation_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = CellSimulation::new(config(0.3), Strategy::AmnesicTerminals).unwrap();
            let r = sim.run(100).unwrap();
            (r.hit_events, r.miss_events, r.report_bits_total)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut sim = CellSimulation::new(
                config(0.3).with_seed(seed),
                Strategy::AmnesicTerminals,
            )
            .unwrap();
            let r = sim.run(100).unwrap();
            (r.hit_events, r.miss_events)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn oversized_report_surfaces_as_error() {
        // Scenario-3-like: TS with a huge window and heavy updates on a
        // narrow channel.
        let mut p = quick_params();
        p.mu = 0.5;
        p.k = 100;
        p.n_items = 2000;
        p.bandwidth_bps = 1_000;
        let cfg = CellConfig::new(p).with_clients(2).with_hotspot_size(5);
        let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
        let err = sim.run(20).unwrap_err();
        assert!(matches!(err, SimulationError::ReportTooLarge { .. }));
    }

    #[test]
    fn adaptive_ts_runs_and_adjusts_windows() {
        let cfg = config(0.6);
        let strategy = Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 10,
            step: 2,
        };
        let mut sim = CellSimulation::new(cfg, strategy).unwrap();
        let report = sim.run(200).unwrap();
        assert_eq!(report.strategy, "ATS");
        assert!(report.query_events() > 0);
    }

    #[test]
    fn hybrid_sig_runs_and_survives_naps_on_cold_items() {
        // Zipf queries make low-id items genuinely hot; the hybrid
        // strategy lists those individually and signature-covers the
        // rest, beating plain AT for sleepers.
        use sw_workload::Popularity;
        let cfg = || {
            CellConfig::new(quick_params().with_s(0.5))
                .with_clients(8)
                .with_hotspot_size(20)
                .with_popularity(Popularity::Zipf { theta: 1.0 })
                .with_seed(77)
        };
        let hybrid = {
            let mut sim =
                CellSimulation::new(cfg(), Strategy::HybridSig { hot_count: 20 }).unwrap();
            sim.run(300).unwrap()
        };
        let at = {
            let mut sim = CellSimulation::new(cfg(), Strategy::AmnesicTerminals).unwrap();
            sim.run(300).unwrap()
        };
        assert_eq!(hybrid.strategy, "HYB");
        assert!(
            hybrid.hit_ratio() > at.hit_ratio(),
            "hybrid h {} should beat AT h {} for sleepers (cold items are nap-proof)",
            hybrid.hit_ratio(),
            at.hit_ratio()
        );
    }

    #[test]
    fn hybrid_sig_safety_violations_are_rare() {
        let cfg = CellConfig::new(quick_params().with_s(0.4))
            .with_clients(8)
            .with_hotspot_size(20)
            .with_seed(78)
            .with_safety_checking();
        let mut sim = CellSimulation::new(cfg, Strategy::HybridSig { hot_count: 30 }).unwrap();
        let report = sim.run(200).unwrap();
        assert!(
            report.safety.violation_rate() < 0.01,
            "hybrid stale rate {} too high",
            report.safety.violation_rate()
        );
    }

    #[test]
    fn stateful_baseline_runs_and_matches_at_hit_ratio() {
        // The stateful server's clients behave like AT units (reconnect
        // loses the cache); with the same seed their hit events match.
        let at = {
            let mut sim = CellSimulation::new(config(0.4), Strategy::AmnesicTerminals).unwrap();
            sim.run(200).unwrap()
        };
        let sf = {
            let mut sim = CellSimulation::new(config(0.4), Strategy::Stateful).unwrap();
            sim.run(200).unwrap()
        };
        assert_eq!(sf.strategy, "SF");
        assert_eq!(sf.hit_events, at.hit_events, "same semantics, same seed");
        assert_eq!(sf.miss_events, at.miss_events);
        // But the channel accounting differs: no broadcast report, some
        // directed invalidations and registration control traffic.
        assert_eq!(sf.report_bits_total, 0);
        assert!(sf.traffic.invalidation_bits > 0);
        assert!(sf.registration_messages > 0, "sleep transitions register");
    }

    #[test]
    fn stateful_directed_traffic_scales_with_holders() {
        // More clients caching the same items ⇒ more directed messages
        // per update — §2's scalability argument against statefulness.
        let run = |clients: usize| {
            let cfg = config(0.0).with_clients(clients);
            let mut sim = CellSimulation::new(cfg, Strategy::Stateful).unwrap();
            sim.run(150).unwrap().traffic.invalidation_bits
        };
        let small = run(4);
        let big = run(16);
        assert!(
            big > small * 2,
            "16 clients ({big} bits) should cost ≫ 4 clients ({small} bits)"
        );
    }

    #[test]
    fn energy_accounting_tracks_sleep_and_listening() {
        use sw_wireless::DeliveryMode;
        // Sleepers spend almost nothing; workaholics pay rx/doze.
        let run = |s: f64, delivery| {
            let cfg = config(s).with_delivery(delivery);
            let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
            let r = sim.run(100).unwrap();
            r.energy_per_client_interval()
        };
        let timer = DeliveryMode::TimerSynchronized {
            clock_skew_bound: 0.0,
        };
        let workaholic = run(0.0, timer);
        let sleeper = run(0.95, timer);
        assert!(
            workaholic > sleeper * 2.0,
            "awake units must burn more: {workaholic} vs {sleeper}"
        );
        // Multicast delivery never costs more listening than waking
        // early for a skewed timer.
        let skewed = run(0.3, DeliveryMode::TimerSynchronized { clock_skew_bound: 1.0 });
        let multicast = run(0.3, DeliveryMode::Multicast { max_jitter: 1.0 });
        assert!(
            multicast < skewed,
            "multicast {multicast} should beat skewed-timer {skewed}"
        );
    }

    #[test]
    fn quasi_delay_reduces_report_traffic() {
        let base = {
            let mut sim =
                CellSimulation::new(config(0.2), Strategy::BroadcastTimestamps).unwrap();
            sim.run(200).unwrap().report_bits_total
        };
        let quasi = {
            let mut sim = CellSimulation::new(
                config(0.2),
                Strategy::QuasiDelay { alpha_intervals: 10 },
            )
            .unwrap();
            sim.run(200).unwrap().report_bits_total
        };
        assert!(
            quasi < base,
            "quasi-delay ({quasi} bits) must thin the TS report stream ({base} bits)"
        );
    }

    #[test]
    fn saturated_exchanges_requeue_fifo_and_charge_once() {
        use sw_wireless::FrameKind;
        // A channel so narrow (~4 000 bits/interval, 1 024 per
        // exchange) that the cold fleet's first intervals want far more
        // than fits: rejected exchanges must defer FIFO across
        // intervals, not vanish or double-charge.
        let mut p = quick_params();
        p.mu = 0.0; // no updates: a fetched item stays valid forever
        p.bandwidth_bps = 400;
        let cfg = CellConfig::new(p.with_s(0.0))
            .with_clients(4)
            .with_hotspot_size(10)
            .with_seed(11);
        let mut sim = CellSimulation::new(cfg, Strategy::AmnesicTerminals).unwrap();
        let mut prev: Vec<(usize, ItemId)> = Vec::new();
        for _ in 0..40 {
            sim.step().unwrap();
            let queue: Vec<(usize, ItemId)> = sim
                .pending_uplinks
                .iter()
                .map(|q| (q.idx, q.item))
                .collect();
            // FIFO across intervals: the previous queue's survivors are
            // a suffix of it, still at the front of the new queue in
            // unchanged order (new deferrals only append).
            let survivors: Vec<(usize, ItemId)> = prev
                .iter()
                .copied()
                .filter(|e| queue.contains(e))
                .collect();
            assert!(prev.ends_with(&survivors), "drain must serve the oldest first");
            assert!(
                queue.starts_with(&survivors),
                "retries must stay ahead of newly deferred exchanges"
            );
            prev = queue;
        }
        let report = sim.report();
        assert!(
            report.overflow_exchanges > 0,
            "the test must actually exercise saturation"
        );
        assert!(
            sim.pending_uplinks.is_empty(),
            "queue must drain once the cold start passes"
        );
        // Each exchange transmits exactly once, however long it waited:
        // with μ = 0 every (client, item) pair is fetched at most once,
        // so queries pair 1:1 with answers and never exceed the 4 × 10
        // distinct pairs.
        let queries = report.traffic.frames.get(FrameKind::Query);
        assert_eq!(queries, report.traffic.frames.get(FrameKind::Answer));
        assert!(
            queries <= 40,
            "a deferred exchange must not transmit twice ({queries} query frames)"
        );
        assert_eq!(report.traffic.query_bits, queries * quick_params().query_bits as u64);
    }

    #[test]
    fn zero_probability_fault_plan_changes_nothing() {
        use sw_faults::{FaultPlan, LossModel};
        // An armed plan whose every probability is zero must be
        // bit-identical to no plan at all — in both feature configs
        // (compiled out it is trivially inert; compiled in, zero-p
        // models draw no randomness).
        let base = {
            let mut sim =
                CellSimulation::new(config(0.3), Strategy::BroadcastTimestamps).unwrap();
            sim.run(100).unwrap()
        };
        let zeroed = {
            let cfg = config(0.3)
                .with_faults(FaultPlan::none().with_loss(LossModel::bernoulli(0.0)));
            let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
            sim.run(100).unwrap()
        };
        assert_eq!(base.hit_events, zeroed.hit_events);
        assert_eq!(base.miss_events, zeroed.miss_events);
        assert_eq!(base.report_bits_total, zeroed.report_bits_total);
        assert_eq!(base.traffic, zeroed.traffic);
        assert_eq!(base.faults, zeroed.faults);
    }

    #[cfg(feature = "faults")]
    mod fault_injection {
        use super::*;
        use sw_faults::{ClockDrift, FaultPlan, LossModel, UplinkFaults};

        fn run_with(
            plan: Option<FaultPlan>,
            strategy: Strategy,
            intervals: u64,
        ) -> SimulationReport {
            let mut cfg = config(0.2).with_safety_checking();
            if let Some(plan) = plan {
                cfg = cfg.with_faults(plan);
            }
            let mut sim = CellSimulation::new(cfg, strategy).unwrap();
            sim.run(intervals).unwrap()
        }

        #[test]
        fn report_loss_costs_hits_and_at_drops_more() {
            let plan = FaultPlan::none().with_loss(LossModel::bernoulli(0.3));
            let clean = run_with(None, Strategy::AmnesicTerminals, 300);
            let lossy = run_with(Some(plan), Strategy::AmnesicTerminals, 300);
            assert!(lossy.faults.reports_lost > 0, "losses must occur at p = 0.3");
            assert!(
                lossy.hit_ratio() < clean.hit_ratio(),
                "lost reports must cost hits: {} !< {}",
                lossy.hit_ratio(),
                clean.hit_ratio()
            );
            assert!(
                lossy.cache_drops > clean.cache_drops,
                "AT must drop its cache after every missed-report gap"
            );
        }

        #[test]
        fn ts_window_recovery_drops_less_than_at() {
            // TS (w = kL, k = 10) restamps across short gaps where AT
            // must drop everything — the paper's central distinction,
            // now driven by fault-induced gaps instead of sleep.
            let plan = FaultPlan::none().with_loss(LossModel::bernoulli(0.2));
            let ts = run_with(Some(plan), Strategy::BroadcastTimestamps, 300);
            let at = run_with(Some(plan), Strategy::AmnesicTerminals, 300);
            assert!(ts.faults.reports_lost > 0);
            assert!(
                ts.cache_drops < at.cache_drops,
                "TS window recovery ({} drops) must beat AT's drop-all rule ({})",
                ts.cache_drops,
                at.cache_drops
            );
        }

        #[test]
        fn never_stale_survives_a_hostile_schedule() {
            // Bursty loss + corruption + drift + uplink failures, with
            // the in-step no-stale-reads enforcement armed: completing
            // the run at all proves zero false validations.
            let plan = FaultPlan::none()
                .with_loss(LossModel::burst(0.1, 0.4, 0.9))
                .with_corruption(0.05)
                .with_drift(ClockDrift {
                    rate_secs_per_interval: 0.02,
                    jitter_secs: 0.01,
                })
                .with_uplink(UplinkFaults {
                    p_fail: 0.2,
                    max_attempts: 3,
                    backoff_base_bits: 64,
                });
            for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
                let report = run_with(Some(plan), strategy, 300);
                assert!(report.faults.reports_missed_total() > 0);
                assert_eq!(report.faults.undetected_corruptions, 0);
                assert_eq!(
                    report.safety.violations, 0,
                    "{strategy:?} validated a stale entry under faults"
                );
            }
        }

        #[test]
        fn query_invalidation_stays_sound_under_the_gauntlet() {
            use sw_query::QueryPlaneConfig;
            // The query plane inherits each strategy's safety contract
            // even when reports are lost, frames are corrupted, and
            // uplinks fail: TS/AT cached results are never stale (the
            // in-step abort enforces it row by row), SIG stays within
            // its diagnosis bound.
            let plan = FaultPlan::none()
                .with_loss(LossModel::burst(0.1, 0.4, 0.9))
                .with_corruption(0.05)
                .with_uplink(UplinkFaults {
                    p_fail: 0.2,
                    max_attempts: 3,
                    backoff_base_bits: 64,
                });
            for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
                let cfg = config(0.2)
                    .with_safety_checking()
                    .with_faults(plan)
                    .with_query(QueryPlaneConfig::new());
                let mut sim = CellSimulation::new(cfg, strategy).unwrap();
                let report = sim.run(300).unwrap();
                assert!(report.faults.reports_missed_total() > 0);
                assert!(report.query.queries_posed > 0);
                assert_eq!(
                    report.safety.violations, 0,
                    "{strategy:?} served a stale query row under faults"
                );
            }
            let cfg = config(0.2)
                .with_safety_checking()
                .with_faults(plan)
                .with_query(QueryPlaneConfig::new());
            let mut sim = CellSimulation::new(cfg, Strategy::Signatures).unwrap();
            let report = sim.run(300).unwrap();
            assert!(
                report.safety.violation_rate() < 0.01,
                "SIG query-row stale rate {} must stay within its bound",
                report.safety.violation_rate()
            );
        }

        #[test]
        fn uplink_retries_back_off_and_eventually_deliver() {
            let plan = FaultPlan::none().with_uplink(UplinkFaults {
                p_fail: 0.3,
                max_attempts: 4,
                backoff_base_bits: 64,
            });
            let clean = run_with(None, Strategy::AmnesicTerminals, 200);
            let faulty = run_with(Some(plan), Strategy::AmnesicTerminals, 200);
            assert!(faulty.faults.uplink_retries > 0);
            assert!(faulty.faults.backoff_intervals > 0);
            // Failed attempts burn real airtime: more query bits for
            // the same workload.
            assert!(faulty.traffic.query_bits > clean.traffic.query_bits);
            assert!(faulty.hit_events > 0, "retried fetches must still land");
        }

        #[test]
        fn drift_hits_timer_clients_but_not_multicast() {
            use sw_wireless::DeliveryMode;
            let plan = FaultPlan::none().with_drift(ClockDrift {
                rate_secs_per_interval: 0.5,
                jitter_secs: 0.0,
            });
            let run = |delivery| {
                let cfg = config(0.2).with_faults(plan).with_delivery(delivery);
                let mut sim =
                    CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
                sim.run(100).unwrap()
            };
            let timer = run(DeliveryMode::TimerSynchronized {
                clock_skew_bound: 0.1,
            });
            let multicast = run(DeliveryMode::Multicast { max_jitter: 1.0 });
            assert!(
                timer.faults.drift_missed_reports > 0,
                "0.5 s/interval drift must beat a 0.1 s guard band"
            );
            assert_eq!(
                multicast.faults.drift_missed_reports, 0,
                "the network wakes a multicast client, not its clock"
            );
        }
    }

    mod query_plane {
        use super::*;
        use sw_query::QueryPlaneConfig;

        fn query_config(s: f64) -> CellConfig {
            config(s).with_query(QueryPlaneConfig::new())
        }

        #[test]
        fn runs_caches_and_reports_counters() {
            let mut sim =
                CellSimulation::new(query_config(0.3), Strategy::BroadcastTimestamps).unwrap();
            let report = sim.run(200).unwrap();
            let q = report.query;
            assert!(q.queries_posed > 0, "clients must pose predicate queries");
            assert!(q.misses > 0, "cold caches must miss");
            assert!(q.hits > 0, "materialized results must be re-served");
            assert!(
                q.hits + q.misses == q.queries_posed,
                "every posed query is a hit or a miss: {q:?}"
            );
            assert!(
                report.miss_events > 0,
                "the item plane keeps running underneath"
            );
        }

        #[test]
        fn updates_invalidate_cached_results() {
            let mut p = quick_params();
            p.mu = 0.02; // lively updates so footprints get hit
            let cfg = CellConfig::new(p.with_s(0.2))
                .with_clients(8)
                .with_hotspot_size(20)
                .with_seed(42)
                .with_query(QueryPlaneConfig::new());
            let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
            let report = sim.run(300).unwrap();
            assert!(
                report.query.entries_invalidated > 0,
                "updated footprints must drop entries: {:?}",
                report.query
            );
        }

        #[test]
        fn query_rows_never_stale_for_ts_and_at() {
            for strategy in [Strategy::BroadcastTimestamps, Strategy::AmnesicTerminals] {
                let cfg = query_config(0.4).with_safety_checking();
                let mut sim = CellSimulation::new(cfg, strategy).unwrap();
                // Completing at all proves it: a stale query row trips
                // the same NeverStale in-step abort as a stale item.
                let report = sim.run(200).unwrap();
                assert!(report.safety.entries_checked > 0);
                assert_eq!(
                    report.safety.violations, 0,
                    "{strategy:?} served a stale query row"
                );
                assert!(report.query.queries_posed > 0);
            }
        }

        #[test]
        fn transactions_commit_and_stats_balance() {
            let cfg = query_config(0.3);
            let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
            let report = sim.run(400).unwrap();
            let q = report.query;
            assert!(q.txns_begun > 0, "txn mix must fire: {q:?}");
            assert!(q.txn_commits > 0, "coherent pins must commit: {q:?}");
            assert_eq!(
                q.txn_commits + q.txn_aborts,
                q.txns_begun,
                "every begun txn resolves exactly once: {q:?}"
            );
        }

        #[test]
        fn non_serializable_reads_are_detected_and_aborted() {
            // Update-heavy cell + eager transactions: some multi-item
            // read must witness a footprint change between its two
            // pinned reports and abort — deterministically, given the
            // seed. This is the serializability contract's teeth: the
            // plane *detects* the interleaving instead of committing a
            // snapshot no serial order could produce.
            let mut p = quick_params();
            p.mu = 0.02;
            let qc = QueryPlaneConfig::new().with_txn_probability(0.5);
            let cfg = CellConfig::new(p.with_s(0.2))
                .with_clients(8)
                .with_hotspot_size(20)
                .with_seed(42)
                .with_query(qc);
            let mut sim = CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
            let report = sim.run(400).unwrap();
            let q = report.query;
            assert!(
                q.txn_aborts > 0,
                "an update-heavy run must detect and abort at least one \
                 non-serializable multi-item read: {q:?}"
            );
            assert!(q.txn_commits > 0, "quiet footprints must still commit: {q:?}");
            assert_eq!(q.txn_commits + q.txn_aborts, q.txns_begun);
        }

        #[test]
        fn deterministic_given_seed_and_thread_count() {
            let run = |threads: usize| {
                let cfg = query_config(0.3).with_sweep_threads(threads);
                let mut sim =
                    CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
                let r = sim.run(150).unwrap();
                (r.query, r.hit_events, r.miss_events, r.report_bits_total)
            };
            let single = run(1);
            assert_eq!(single, run(4), "query plane must be sweep-invariant");
            assert_eq!(single, run(7), "odd split points included");
        }

        #[test]
        fn query_plane_leaves_item_plane_schedules_untouched() {
            // Arming the query plane must not perturb any pre-existing
            // random stream (the plane draws only from its own
            // `StreamId::QueryPlan`): the update process, the item-query
            // arrivals, and the sleep schedule — hence the report stream
            // and drop counts — stay byte-identical. Item *hits* may
            // legitimately change: query fetches land in the item cache.
            let run = |armed: bool| {
                let mut cfg = config(0.3);
                if armed {
                    cfg = cfg.with_query(QueryPlaneConfig::new());
                }
                let mut sim =
                    CellSimulation::new(cfg, Strategy::BroadcastTimestamps).unwrap();
                let r = sim.run(150).unwrap();
                (r.queries_posed, r.report_bits_total, r.cache_drops)
            };
            assert_eq!(run(false), run(true));
        }

        #[test]
        fn rejects_columnar_and_backbone() {
            let Err(err) = CellSimulation::new(
                query_config(0.3).with_fleet(FleetBackend::Columnar),
                Strategy::BroadcastTimestamps,
            ) else {
                panic!("forcing Columnar under a query plane must be rejected");
            };
            assert!(matches!(err, SimulationError::InvalidConfig(_)));

            let err = query_config(0.3)
                .with_backbone(MasterSeed(99))
                .validate()
                .unwrap_err();
            assert!(err.contains("standalone"), "got: {err}");
        }
    }

    #[test]
    fn measured_hit_ratio_tracks_analysis_for_at() {
        // E11 in miniature: simulated h_at within a few points of Eq. 41.
        let params = quick_params().with_s(0.3);
        let cfg = CellConfig::new(params)
            .with_clients(20)
            .with_hotspot_size(20)
            .with_seed(7);
        let mut sim = CellSimulation::new(cfg, Strategy::AmnesicTerminals).unwrap();
        let report = sim.run(500).unwrap();
        let analytic = sw_analysis::h_at(&params);
        let measured = report.hit_ratio();
        assert!(
            (measured - analytic).abs() < 0.05,
            "h_at: simulated {measured} vs Eq.41 {analytic}"
        );
    }
}
