//! One-stop imports for library users.
//!
//! ```
//! use sleepers::prelude::*;
//! let params = ScenarioParams::scenario1();
//! let _ = CellConfig::new(params);
//! ```

pub use crate::config::{CellConfig, FleetBackend, WakeMode};
pub use crate::metrics::{MigrationStats, SimulationReport};
pub use crate::simulation::{CellSimulation, SimulationError};
pub use crate::strategy::Strategy;

pub use sw_adaptive::FeedbackMethod;
pub use sw_capacity::{CapacityStats, CoopConfig, CoopStats, ReplacementPolicy};
pub use sw_analysis::{
    effectiveness_at, h_at, h_sig, h_ts_bounds, h_ts_estimate, mhr, throughput_at,
    throughput_max, throughput_nc, throughput_sig, throughput_ts, Sweep, Throughputs,
};
pub use sw_faults::{ClockDrift, FaultPlan, FaultTotals, LossModel, UplinkFaults};
pub use sw_query::{QueryPlaneConfig, QueryPredicate, QueryStats};
pub use sw_sim::{MasterSeed, SimDuration, SimTime};
pub use sw_wireless::DeliveryMode;
pub use sw_workload::{Popularity, ScenarioParams, SweepAxis};
