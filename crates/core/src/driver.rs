//! The server-side strategy driver, shared by the simulator and the
//! live daemon.
//!
//! A *static* broadcast strategy (TS, AT, SIG, hybrid) is fully
//! described by its [`ReportBuilder`]: feed it updates, ask it for the
//! report. The driver-constructed strategies carry extra server state —
//! adaptive TS folds per-period query/update feedback into its window
//! controller, quasi-delay thins the TS report to the *due* obligations,
//! and the stateful baseline keeps a per-client registry for directed
//! invalidations. [`ServerDriver`] packages all four shapes behind one
//! seam so both `CellSimulation` and the live `sw-serve` ticker run the
//! identical server logic: same construction, same update ingestion,
//! same build rule, same uplink feedback, same period boundary.
//!
//! The live daemon can host every driver shape except the stateful
//! baseline (directed messages need per-client connections the
//! broadcast wire does not model) and adaptive Method 1 (its MHR
//! estimate needs piggybacked local-hit times, which the live uplink
//! frame does not carry).

use sw_adaptive::{
    AdaptiveController, AdaptiveTsBuilder, FeedbackMethod, PeriodItemStats,
};
use sw_quasi::ObligationTracker;
use sw_server::{
    Database, ItemId, ItemTable, PiggybackInfo, ReportBuilder, StatefulServer, TsBuilder,
    UpdateRecord, UplinkProcessor,
};
use sw_sim::{MasterSeed, SimDuration, SimTime};
use sw_wireless::FramePayload;
use sw_workload::ScenarioParams;

use crate::strategy::Strategy;

/// Server-side machinery; adaptive and quasi strategies carry extra
/// state beyond the plain report builder.
// One Side exists per driver; the variant size spread is irrelevant
// next to the database it sits beside.
#[allow(clippy::large_enum_variant)]
enum Side {
    Static(Box<dyn ReportBuilder + Send>),
    Adaptive {
        builder: AdaptiveTsBuilder,
        controller: AdaptiveController,
        eval_period: u32,
        method: FeedbackMethod,
        /// Per-item query timestamps this period (uplink + piggybacked).
        query_times: ItemTable<Vec<SimTime>>,
        /// Per-item update timestamps this period.
        update_times: ItemTable<Vec<SimTime>>,
    },
    QuasiDelay {
        builder: TsBuilder,
        tracker: ObligationTracker,
    },
    /// §2's stateful baseline: directed invalidation messages to
    /// registered holders instead of a broadcast report. `pending_ids`
    /// collects this interval's updated ids so the AT-style client
    /// algorithm can apply them.
    Stateful {
        registry: StatefulServer,
        pending_ids: Vec<ItemId>,
    },
}

/// One strategy's complete server half. See the module docs.
pub struct ServerDriver {
    side: Side,
}

impl ServerDriver {
    /// Builds the server half of `strategy`. `n_clients` seeds the
    /// stateful baseline's registry (every unit starts connected);
    /// the other shapes ignore it.
    pub fn new(
        strategy: Strategy,
        params: &ScenarioParams,
        protocol_seed: MasterSeed,
        db: &Database,
        n_clients: usize,
    ) -> Self {
        let latency = SimDuration::from_secs(params.latency_secs);
        let side = match strategy {
            Strategy::AdaptiveTs {
                method,
                eval_period,
                step,
            } => Side::Adaptive {
                builder: AdaptiveTsBuilder::new(latency, params.k),
                controller: AdaptiveController::new(
                    method,
                    step,
                    0.0,
                    params.query_bits,
                    params.timestamp_bits,
                    params.n_items,
                ),
                eval_period,
                method,
                query_times: ItemTable::dense(params.n_items),
                update_times: ItemTable::dense(params.n_items),
            },
            Strategy::QuasiDelay { alpha_intervals } => Side::QuasiDelay {
                builder: TsBuilder::with_window(latency.scaled(alpha_intervals as f64)),
                tracker: ObligationTracker::for_universe(alpha_intervals, params.n_items),
            },
            Strategy::Stateful => {
                let mut registry = StatefulServer::with_universe(params.n_items);
                for idx in 0..n_clients as u64 {
                    registry.connect(idx);
                }
                Side::Stateful {
                    registry,
                    pending_ids: Vec::new(),
                }
            }
            other => Side::Static(other.make_builder(params, protocol_seed, db)),
        };
        ServerDriver { side }
    }

    /// Whether this driver runs the stateful baseline (directed
    /// messages instead of a broadcast report).
    pub fn is_stateful(&self) -> bool {
        matches!(self.side, Side::Stateful { .. })
    }

    /// The stateful baseline's registry, for connect/disconnect and
    /// directed-recipient bookkeeping. `None` for every other shape.
    pub fn registry_mut(&mut self) -> Option<&mut StatefulServer> {
        match &mut self.side {
            Side::Stateful { registry, .. } => Some(registry),
            _ => None,
        }
    }

    /// Current per-item adaptive window (adaptive strategy only).
    pub fn adaptive_window(&self, item: ItemId) -> Option<u32> {
        match &self.side {
            Side::Adaptive { builder, .. } => Some(builder.windows().get(item)),
            _ => None,
        }
    }

    /// Ingests one applied update.
    pub fn on_update(&mut self, rec: &UpdateRecord) {
        match &mut self.side {
            Side::Static(b) => b.on_update(rec),
            Side::Adaptive {
                builder,
                update_times,
                ..
            } => {
                builder.on_update(rec);
                update_times
                    .get_or_insert_with(rec.item, Vec::new)
                    .push(rec.at);
            }
            Side::QuasiDelay { .. } => {}
            // Stateful invalidations are charged by the caller, which
            // owns the channel; here we only remember the ids for the
            // client-side framing.
            Side::Stateful { pending_ids, .. } => pending_ids.push(rec.item),
        }
    }

    /// Builds interval `i`'s report payload, broadcast at `t_i`.
    pub fn build(&mut self, i: u64, t_i: SimTime, db: &Database) -> FramePayload {
        match &mut self.side {
            Side::Static(b) => b.build(i, t_i, db),
            Side::Adaptive { builder, .. } => builder.build(i, t_i, db),
            Side::QuasiDelay { builder, tracker } => {
                // Build the full TS report over window α, then thin it to
                // the *due* items (§7: an item "can be considered for
                // reporting" only when an outstanding copy reaches its
                // allowed lag).
                let payload = builder.build(i, t_i, db);
                let entries = match payload {
                    FramePayload::TimestampReport { entries, .. } => entries,
                    other => unreachable!("TS builder produced {other:?}"),
                };
                let mut kept = Vec::new();
                for (item, ts) in entries {
                    if tracker.due(item, i) {
                        kept.push((item, ts));
                        // Reported: outstanding copies will be dropped
                        // and re-fetched (fresh obligations arrive via
                        // the uplink path).
                        tracker.consume(item, i, false);
                    }
                }
                // Due items that did NOT change within α are implicitly
                // re-validated by their absence; their obligation clock
                // restarts.
                let due_unchanged: Vec<ItemId> = (0..db.len())
                    .filter(|&item| tracker.due(item, i))
                    .collect();
                for item in due_unchanged {
                    tracker.consume(item, i, true);
                }
                FramePayload::TimestampReport {
                    report_ts_micros: (t_i.as_secs() * 1e6).round() as u64,
                    entries: kept,
                }
            }
            Side::Stateful { pending_ids, .. } => {
                let mut ids = std::mem::take(pending_ids);
                ids.sort_unstable();
                ids.dedup();
                FramePayload::AmnesicReport {
                    report_ts_micros: (t_i.as_secs() * 1e6).round() as u64,
                    ids,
                }
            }
        }
    }

    /// Feeds one answered uplink query into the strategy's server
    /// state: adaptive Method 1 records the query time (plus any
    /// piggybacked local-hit times) for its MHR estimate, quasi-delay
    /// registers the fresh obligation, and the stateful baseline
    /// registers the cached copy.
    pub fn note_uplink(
        &mut self,
        mu_id: u64,
        item: ItemId,
        i: u64,
        t_i: SimTime,
        piggyback: Option<&PiggybackInfo>,
    ) {
        match &mut self.side {
            Side::Adaptive {
                query_times,
                method: FeedbackMethod::Method1,
                ..
            } => {
                let times = query_times.get_or_insert_with(item, Vec::new);
                if let Some(pb) = piggyback {
                    times.extend(pb.local_hit_times.iter().copied());
                }
                times.push(t_i);
            }
            Side::QuasiDelay { tracker, .. } => tracker.on_uplink(item, i),
            Side::Stateful { registry, .. } => {
                // Registration rides the uplink query for free.
                registry.register_cache(mu_id, item);
            }
            _ => {}
        }
    }

    /// Runs the adaptive evaluation-period boundary when interval `i`
    /// closes a period: drains the builder's mention counts and the
    /// uplink processor's per-item stats, feeds the window controller,
    /// and widens the database's update-log retention to cover the
    /// largest granted window. Returns `(default_k, exceptions)` when a
    /// period actually closed (for observation), `None` otherwise.
    pub fn end_period_if_due(
        &mut self,
        i: u64,
        uplink: &mut UplinkProcessor,
        db: &mut Database,
        latency: SimDuration,
    ) -> Option<(u32, usize)> {
        let Side::Adaptive {
            builder,
            controller,
            eval_period,
            method,
            query_times,
            update_times,
        } = &mut self.side
        else {
            return None;
        };
        if !i.is_multiple_of(*eval_period as u64) {
            return None;
        }
        let mentions = builder.end_period();
        let uplink_stats = uplink.end_period();
        // Both tables iterate in ascending id order; merge the two
        // sorted id streams.
        let mut items: Vec<ItemId> = mentions
            .iter_sorted()
            .map(|(item, _)| item)
            .chain(uplink_stats.iter_sorted().map(|(item, _)| item))
            .collect();
        items.sort_unstable();
        items.dedup();
        let stats: Vec<PeriodItemStats> = items
            .into_iter()
            .map(|item| {
                let us = uplink_stats.get(item).copied().unwrap_or_default();
                let mhr = match method {
                    FeedbackMethod::Method1 => {
                        let queries = query_times.get(item).map(|v| v.as_slice()).unwrap_or(&[]);
                        let updates = update_times.get(item).map(|v| v.as_slice()).unwrap_or(&[]);
                        Some(sw_adaptive::estimate_mhr(queries, updates))
                    }
                    FeedbackMethod::Method2 => None,
                };
                PeriodItemStats {
                    item,
                    uplink_queries: us.uplink_queries,
                    piggybacked_hits: us.piggybacked_hits,
                    mentions: mentions.get(item).copied().unwrap_or(0),
                    mhr,
                }
            })
            .collect();
        controller.end_period(builder.windows_mut(), stats);
        query_times.clear();
        update_times.clear();
        // Growing windows need deeper update history.
        let max_k = builder
            .windows()
            .exceptions()
            .iter()
            .map(|&(_, k)| k)
            .chain(std::iter::once(builder.windows().default_k()))
            .max()
            .unwrap_or(1);
        db.widen_log_retention(latency.scaled(max_k as f64 + 2.0));
        Some((
            builder.windows().default_k(),
            builder.windows().exceptions().len(),
        ))
    }
}
