//! Simulation output metrics.
//!
//! The analysis speaks in hit ratios, report bits, and Eq. 9
//! throughput; [`SimulationReport`] exposes the *measured* counterparts
//! so the validation tests and the experiment harness can put the
//! simulator and the model side by side.

use sw_capacity::{CapacityStats, CoopStats};
use sw_faults::FaultTotals;
use sw_observe::ObserveSnapshot;
use sw_query::QueryStats;
use sw_wireless::{EnergyTotals, TrafficTotals};

use crate::safety::SafetyStats;

/// Handoff counters for a cell participating in a mesh. All zeros for
/// a standalone cell — nothing here affects single-cell metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Units that arrived from another cell.
    pub migrations_in: u64,
    /// Units that departed for another cell.
    pub migrations_out: u64,
    /// Arrivals whose carried cache was lost to the handoff — either
    /// dropped at attach because the cells' report histories diverged,
    /// or dropped by the unit's own strategy at the first report heard
    /// in the new cell (AT always; TS when the transit gap exceeded
    /// its window).
    pub handoff_drops: u64,
    /// Stateful baseline only: wake-up registrations by units that
    /// migrated in (each costs a directed control message, the §2
    /// per-cell state the paper charges the stateful server for).
    pub cross_cell_registrations: u64,
}

/// Everything one simulation run measured.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Strategy name ("TS", "AT", "SIG", "NC", "ATS", "QD").
    pub strategy: &'static str,
    /// Broadcast intervals simulated.
    pub intervals: u64,
    /// Clients in the cell.
    pub n_clients: usize,
    /// Query events (item × interval) answered from cache.
    pub hit_events: u64,
    /// Query events that went uplink.
    pub miss_events: u64,
    /// Raw query arrivals.
    pub queries_posed: u64,
    /// Whole-cache drops across all clients.
    pub cache_drops: u64,
    /// Individual invalidations across all clients.
    pub items_invalidated: u64,
    /// Sum of report sizes over all intervals (analytical bits).
    pub report_bits_total: u64,
    /// Channel traffic totals.
    pub traffic: TrafficTotals,
    /// Query exchanges that did not fit their interval's bit budget and
    /// overflowed into accounting-only overage (the simulated fleet is
    /// normally far below channel capacity; a non-zero value flags an
    /// overloaded configuration).
    pub overflow_exchanges: u64,
    /// Connect/disconnect control messages (stateful baseline only).
    pub registration_messages: u64,
    /// Aggregate client energy by radio state (§9/§10 accounting).
    pub energy: EnergyTotals,
    /// Safety-checker counters (all zeros unless enabled).
    pub safety: SafetyStats,
    /// Query-plane counters summed over the fleet (all zeros unless the
    /// cell was configured with
    /// [`crate::config::CellConfig::with_query`]).
    pub query: QueryStats,
    /// Handoff counters (all zeros for standalone cells).
    pub migration: MigrationStats,
    /// Fault-injection counters (all zeros unless a plan is armed and
    /// the `faults` cargo feature is on).
    pub faults: FaultTotals,
    /// Bounded-cache eviction counters summed over the fleet (all zeros
    /// for unbounded cells).
    pub capacity: CapacityStats,
    /// Cooperative-miss counters (all zeros unless
    /// [`crate::config::CellConfig::with_coop`] armed the path).
    pub coop: CoopStats,
    /// Interval capacity `L·W` in bits.
    pub interval_bits: f64,
    /// `b_q + b_a` in bits.
    pub per_query_bits: f64,
    /// Analytical `T_max` at the run's parameters (Eq. 11).
    pub t_max_analytic: f64,
    /// Attached observation snapshot: `Some` only when the run was
    /// configured with [`crate::config::CellConfig::with_observe`] AND
    /// the `observe` cargo feature is on. Contains wall-clock span
    /// timings, so strip it (`report.observe = None`) before comparing
    /// reports byte-for-byte; the snapshot's own deterministic parts
    /// are compared via `ObserveSnapshot::deterministic_digest`.
    pub observe: Option<ObserveSnapshot>,
}

impl SimulationReport {
    /// Measured hit ratio over query events. NaN for a run with no
    /// query events at all: "no data" must not plot as the real point
    /// `h = 0` (formatters render it as `--`/`null`).
    pub fn hit_ratio(&self) -> f64 {
        let events = self.hit_events + self.miss_events;
        if events == 0 {
            f64::NAN
        } else {
            self.hit_events as f64 / events as f64
        }
    }

    /// Total query events.
    pub fn query_events(&self) -> u64 {
        self.hit_events + self.miss_events
    }

    /// Mean report size in bits. NaN when no interval was simulated
    /// (an empty run has no mean, and `0.0` would silently plot as a
    /// real data point).
    pub fn report_bits_mean(&self) -> f64 {
        if self.intervals == 0 {
            f64::NAN
        } else {
            self.report_bits_total as f64 / self.intervals as f64
        }
    }

    /// Eq. 9 evaluated with the *measured* hit ratio and mean report
    /// size: the throughput this cell could sustain at saturation.
    /// NaN when the run measured nothing (empty-run `hit_ratio` /
    /// `report_bits_mean` propagate).
    pub fn throughput(&self) -> f64 {
        let bc = self.report_bits_mean();
        if bc >= self.interval_bits {
            return 0.0;
        }
        let h = self.hit_ratio();
        if h.is_nan() || bc.is_nan() {
            return f64::NAN;
        }
        let miss = (1.0 - h).max(1e-15);
        (self.interval_bits - bc) / (self.per_query_bits * miss)
    }

    /// Measured effectiveness `e = T/T_max` (Eq. 10), capped at 1.
    /// NaN for an empty run (`f64::min` would otherwise swallow the
    /// NaN throughput and report a perfect 1.0).
    pub fn effectiveness(&self) -> f64 {
        if self.t_max_analytic <= 0.0 {
            return 0.0;
        }
        let t = self.throughput();
        if t.is_nan() {
            return f64::NAN;
        }
        (t / self.t_max_analytic).min(1.0)
    }

    /// Mean client energy per interval (all radio states).
    pub fn energy_per_client_interval(&self) -> f64 {
        let denom = (self.intervals * self.n_clients as u64).max(1) as f64;
        self.energy.total() / denom
    }

    /// Uplink query events per interval actually simulated.
    pub fn misses_per_interval(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.miss_events as f64 / self.intervals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimulationReport {
        SimulationReport {
            strategy: "AT",
            intervals: 100,
            n_clients: 10,
            hit_events: 900,
            miss_events: 100,
            queries_posed: 2000,
            cache_drops: 5,
            items_invalidated: 50,
            report_bits_total: 100 * 1000,
            traffic: TrafficTotals::default(),
            overflow_exchanges: 0,
            registration_messages: 0,
            energy: EnergyTotals::default(),
            safety: SafetyStats::default(),
            query: QueryStats::default(),
            migration: MigrationStats::default(),
            faults: FaultTotals::default(),
            capacity: CapacityStats::default(),
            coop: CoopStats::default(),
            interval_bits: 100_000.0,
            per_query_bits: 1024.0,
            t_max_analytic: 10_000.0,
            observe: None,
        }
    }

    #[test]
    fn hit_ratio_and_events() {
        let r = report();
        assert!((r.hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(r.query_events(), 1000);
    }

    #[test]
    fn throughput_matches_eq9_by_hand() {
        let r = report();
        // B_c = 1000 bits/interval; (1e5 − 1e3)/(1024 · 0.1).
        let expected = 99_000.0 / 102.4;
        assert!((r.throughput() - expected).abs() < 1e-9);
    }

    #[test]
    fn effectiveness_normalizes_and_caps() {
        let mut r = report();
        let e = r.effectiveness();
        assert!((e - r.throughput() / 10_000.0).abs() < 1e-12);
        r.t_max_analytic = 1.0;
        assert_eq!(r.effectiveness(), 1.0, "capped at 1");
    }

    #[test]
    fn oversized_report_means_zero_throughput() {
        let mut r = report();
        r.report_bits_total = 200_000 * 100;
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn energy_per_client_interval_normalizes() {
        let mut r = report();
        r.energy = sw_wireless::EnergyTotals {
            rx: 500.0,
            tx: 300.0,
            doze: 200.0,
            sleep: 0.0,
        };
        // 100 intervals × 10 clients.
        assert!((r.energy_per_client_interval() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_nan_not_zero() {
        // "No data" must not plot as the real data point h = 0 /
        // B_c = 0; downstream serializers render NaN as null/--.
        let mut r = report();
        r.intervals = 0;
        r.hit_events = 0;
        r.miss_events = 0;
        assert!(r.hit_ratio().is_nan());
        assert!(r.report_bits_mean().is_nan());
        assert!(r.throughput().is_nan(), "NaN propagates through Eq. 9");
        assert!(r.effectiveness().is_nan(), "min() must not mask the NaN");
        assert_eq!(r.misses_per_interval(), 0.0);
    }

    #[test]
    fn zero_events_alone_is_nan_hit_ratio() {
        let mut r = report();
        r.hit_events = 0;
        r.miss_events = 0;
        assert!(r.hit_ratio().is_nan());
        // Intervals ran, so the mean report size is still real.
        assert!((r.report_bits_mean() - 1000.0).abs() < 1e-12);
        assert!(r.throughput().is_nan());
    }
}
