//! Columnar client fleet: struct-of-arrays mobile-unit state.
//!
//! The boxed-[`sw_client::MobileUnit`] fleet stores each client's cache
//! as a dense `n_items`-wide table behind a trait-object handler. That
//! layout is exact but hostile to the hot path: one report sweep visits
//! a thousand heap-scattered caches, each a universe-sized vector of
//! `Option<CacheEntry>`, and at 10⁵–10⁶ clients per cell the per-client
//! tables alone dwarf RAM (a million 2000-item dense caches ≈ 48 GB).
//!
//! This module keeps the *same observable semantics* in parallel
//! columns. The enabling invariant is that a client's cache is always a
//! subset of its hotspot: queries draw only hotspot items, and entries
//! are installed only by answers to queries. So every client owns a
//! fixed block of `H = hotspot_size` *slots*, one per hotspot item in
//! ascending id order, and the whole fleet is six flat vectors indexed
//! by `client * H + slot`:
//!
//! * `slot_items` — the hotspot, sorted (slot → item id);
//! * `valid` — one bit per slot (cached or not), `⌈H/64⌉` words/client;
//! * `values`, `stamps` — the cached value and validity timestamp;
//! * plus per-client scalars (stats, `T_l`, awake flag, pending
//!   queries, the query/sleep processes).
//!
//! One report sweep is then a cache-friendly linear scan over the slot
//! block, and disjoint client ranges of the columns can be swept by
//! parallel workers with no aliasing. Slot order is ascending item id,
//! which is exactly the iteration order of the dense `ItemTable` cache
//! — the per-strategy kernels below therefore produce *bit-identical*
//! outcomes (same invalidation lists in the same order, same stats,
//! same uplink requests) as the `MobileUnit` path. The equivalence is
//! pinned by `tests/columnar_equivalence.rs` and, transitively, by the
//! figure-3 regression artifact, which now runs on this backend.
//!
//! Bounded caches ride along as optional columns ([`CapColumns`]):
//! per-slot recency/frequency ticks, a per-client access clock, and a
//! per-slot ghost byte remembering evicted-entry stamps. They are
//! materialized only when the cell bounds its caches, so unbounded
//! sweeps touch nothing new; when armed, eviction at install time and
//! ghost classification at answer time transcribe
//! `sw_client::Cache` exactly (the victim key's item-id tiebreak makes
//! the minimum unique, so the slot scan and the boxed table walk pick
//! the same victim).
//!
//! Eligibility is decided by the simulation driver: static report
//! builders only (TS/AT/SIG/NC/HYB/GR), no piggyback histories,
//! standalone cells (no mesh backbone). Everything else stays on the
//! boxed-unit fleet.

use std::sync::Arc;

use sw_capacity::{victim_key, EntryMeta, ReplacementPolicy};
use sw_client::handler::{time_from_micros, time_to_micros};
use sw_client::{IntervalReport, MuStats, PendingQuery, ProcessOutcome};
use sw_server::{GroupMap, HotSet, ItemId, QueryAnswer};
use sw_signature::{CombinedSignature, SyndromeDecoder};
use sw_sim::{BernoulliIntervalProcess, PoissonProcess, RngStream, SimDuration, SimTime};
use sw_wireless::FramePayload;

/// Strategy-specific machinery shared by every client of the fleet
/// (none of it is per-client except the SIG tracking columns, which
/// live in [`SigColumns`] so the report sweep can borrow the two
/// disjointly).
pub(crate) enum ColumnarSpec {
    /// §3.1 TS: window `w = k·L`.
    Ts {
        /// The window `w`.
        window: SimDuration,
    },
    /// §3.2 AT: drop on any gap longer than `L`.
    At {
        /// The broadcast latency `L`.
        latency: SimDuration,
    },
    /// §4.2 NC: never retain anything.
    NoCache,
    /// §10 group-granular AT.
    Group {
        /// The broadcast latency `L`.
        latency: SimDuration,
        /// The shared item → group partition.
        map: GroupMap,
    },
    /// §3.3 SIG: syndrome decoding over tracked subset signatures.
    Sig {
        /// The shared decoder (family + plan).
        decoder: SyndromeDecoder,
    },
    /// §10 hybrid: hot items AT-style, cold items SIG-style.
    Hybrid {
        /// The broadcast latency `L` (hot-half gap rule).
        latency: SimDuration,
        /// The shared hot set.
        hot: HotSet,
        /// The shared cold-half decoder.
        decoder: SyndromeDecoder,
    },
}

impl ColumnarSpec {
    fn decoder(&self) -> Option<&SyndromeDecoder> {
        match self {
            ColumnarSpec::Sig { decoder } | ColumnarSpec::Hybrid { decoder, .. } => Some(decoder),
            _ => None,
        }
    }
}

/// Per-client SIG/HYB tracking state, columnar: `m` signature slots per
/// client (mirroring `SigHandler::tracked`), the tracked count, the
/// last-heard report share, and the unmatched-subset telemetry.
struct SigColumns {
    m: usize,
    /// Tracked combined signature per subset, stride `m` per client.
    tracked: Vec<Option<CombinedSignature>>,
    tracked_count: Vec<usize>,
    /// The signatures of the last heard report (an `Arc` share of the
    /// broadcast payload, as in `SigHandler::last_report`).
    last_report: Vec<Arc<Vec<CombinedSignature>>>,
    last_unmatched: Vec<u32>,
}

/// Capacity configuration for a bounded fleet (mirrors the boxed
/// cache's `with_capacity` + `set_replacement`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapacitySpec {
    /// Max cached entries per client.
    pub cap: usize,
    /// Victim selection policy.
    pub policy: ReplacementPolicy,
    /// TS window `w = kL` for [`ReplacementPolicy::WindowAge`].
    pub window: SimDuration,
}

/// Bounded-cache state, columnar: the per-entry replacement metadata
/// and ghost list of `sw_client::Cache`, as parallel slot columns.
/// Allocated only for bounded fleets — unbounded sweeps never touch it.
struct CapColumns {
    spec: CapacitySpec,
    /// Recency tick of the last access, stride `h` (only meaningful
    /// where the valid bit is set; reinstall overwrites).
    last_used: Vec<u64>,
    /// Hits since install (1 at install), stride `h`.
    use_count: Vec<u64>,
    /// Ghost state per slot: 0 = none, 1 = fresh, 2 = proven stale.
    ghost: Vec<u8>,
    /// Evicted entry's validity stamp (meaningful where `ghost != 0`),
    /// stride `h`.
    ghost_stamps: Vec<SimTime>,
    /// Per-client access clock (`Cache::clock`): bumped on every
    /// answer-loop read — hit or miss — and on every install.
    clock: Vec<u64>,
}

/// Bounded-cache columns of one contiguous client chunk.
struct CapChunk<'a> {
    last_used: &'a mut [u64],
    use_count: &'a mut [u64],
    ghost: &'a mut [u8],
    ghost_stamps: &'a mut [SimTime],
    clock: &'a mut [u64],
}

/// The AT-family gap tolerance: `L` plus the same relative epsilon the
/// boxed handlers use.
fn gap_limit(latency: SimDuration) -> SimDuration {
    latency + SimDuration::from_secs(latency.as_secs() * 1e-9)
}

/// The columnar client fleet. See the module docs for the layout.
pub(crate) struct ColumnarFleet {
    n: usize,
    /// Hotspot size `H` = slots per client.
    h: usize,
    /// Validity bitmap words per client.
    words: usize,
    /// Hotspot in *draw order*, stride `h` (query draws map a uniform
    /// index through this, exactly like `MuConfig::hotspot`).
    hotspot_draw: Vec<ItemId>,
    /// Hotspot in ascending id order, stride `h` (slot → item).
    slot_items: Vec<ItemId>,
    /// Validity bitmap, stride `words`.
    valid: Vec<u64>,
    /// Cached values, stride `h`.
    values: Vec<u64>,
    /// Validity timestamps `t_x`, stride `h`.
    stamps: Vec<SimTime>,
    /// Live slot count per client (= `cache.len()`).
    cached: Vec<u32>,
    t_l: Vec<Option<SimTime>>,
    awake: Vec<bool>,
    pending: Vec<Vec<PendingQuery>>,
    stats: Vec<MuStats>,
    queries: Vec<PoissonProcess>,
    sleep: Vec<BernoulliIntervalProcess>,
    spec: ColumnarSpec,
    sig: Option<SigColumns>,
    cap: Option<CapColumns>,
}

impl ColumnarFleet {
    /// Creates an empty fleet; clients are appended by
    /// [`Self::push_client`] in the constructor's per-index loop, so
    /// the rng draw order matches the boxed-unit path exactly.
    pub(crate) fn new(
        hotspot_size: usize,
        spec: ColumnarSpec,
        capacity: Option<CapacitySpec>,
    ) -> Self {
        assert!(hotspot_size > 0, "hotspot cannot be empty");
        let sig = spec.decoder().map(|d| {
            let m = d.plan().m as usize;
            SigColumns {
                m,
                tracked: Vec::new(),
                tracked_count: Vec::new(),
                last_report: Vec::new(),
                last_unmatched: Vec::new(),
            }
        });
        let cap = capacity.map(|spec| {
            assert!(spec.cap > 0, "cache capacity must be positive");
            CapColumns {
                spec,
                last_used: Vec::new(),
                use_count: Vec::new(),
                ghost: Vec::new(),
                ghost_stamps: Vec::new(),
                clock: Vec::new(),
            }
        });
        ColumnarFleet {
            n: 0,
            h: hotspot_size,
            words: hotspot_size.div_ceil(64),
            hotspot_draw: Vec::new(),
            slot_items: Vec::new(),
            valid: Vec::new(),
            values: Vec::new(),
            stamps: Vec::new(),
            cached: Vec::new(),
            t_l: Vec::new(),
            awake: Vec::new(),
            pending: Vec::new(),
            stats: Vec::new(),
            queries: Vec::new(),
            sleep: Vec::new(),
            spec,
            sig,
            cap,
        }
    }

    /// Appends one client, consuming exactly the draws
    /// `MobileUnit::new` would: one exponential from `query_rng` for
    /// the Poisson query process's first arrival. The hotspot arrives
    /// in draw order and is sorted into slot order here.
    pub(crate) fn push_client(
        &mut self,
        hotspot: Vec<ItemId>,
        query_rate_per_item: f64,
        sleep_probability: f64,
        query_rng: &mut RngStream,
    ) {
        assert_eq!(hotspot.len(), self.h, "fleet hotspots must share one size");
        let total_rate = query_rate_per_item * hotspot.len() as f64;
        let mut sorted = hotspot.clone();
        sorted.sort_unstable();
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "hotspot draws must be distinct for the slot mapping"
        );
        self.hotspot_draw.extend_from_slice(&hotspot);
        self.slot_items.extend_from_slice(&sorted);
        self.valid.extend(std::iter::repeat_n(0u64, self.words));
        self.values.extend(std::iter::repeat_n(0u64, self.h));
        self.stamps.extend(std::iter::repeat_n(SimTime::ZERO, self.h));
        self.cached.push(0);
        self.t_l.push(None);
        self.awake.push(true);
        self.pending.push(Vec::new());
        self.stats.push(MuStats::default());
        self.queries.push(PoissonProcess::new(total_rate, query_rng));
        self.sleep.push(BernoulliIntervalProcess::new(sleep_probability));
        if let Some(sig) = &mut self.sig {
            sig.tracked.extend(std::iter::repeat_n(None, sig.m));
            sig.tracked_count.push(0);
            sig.last_report.push(Arc::new(Vec::new()));
            sig.last_unmatched.push(0);
        }
        if let Some(cap) = &mut self.cap {
            cap.last_used.extend(std::iter::repeat_n(0u64, self.h));
            cap.use_count.extend(std::iter::repeat_n(0u64, self.h));
            cap.ghost.extend(std::iter::repeat_n(0u8, self.h));
            cap.ghost_stamps
                .extend(std::iter::repeat_n(SimTime::ZERO, self.h));
            cap.clock.push(0);
        }
        self.n += 1;
    }

    /// Number of clients.
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Whether client `idx` is awake this interval.
    pub(crate) fn is_awake(&self, idx: usize) -> bool {
        self.awake[idx]
    }

    /// Stats snapshot for client `idx`.
    pub(crate) fn stats(&self, idx: usize) -> MuStats {
        self.stats[idx]
    }

    /// Iterates all per-client stats (report aggregation).
    pub(crate) fn stats_iter(&self) -> impl Iterator<Item = &MuStats> + '_ {
        self.stats.iter()
    }

    /// Zeroes every client's stats (warm-up reset).
    pub(crate) fn reset_stats(&mut self) {
        self.stats.fill(MuStats::default());
    }

    /// Marks client `idx` asleep.
    pub(crate) fn enter_sleep(&mut self, idx: usize) {
        self.awake[idx] = false;
    }

    /// Credits `k` asleep intervals (lazy settlement at wake-up).
    pub(crate) fn credit_asleep_intervals(&mut self, idx: usize, k: u64) {
        self.stats[idx].intervals_asleep += k;
    }

    /// Draws client `idx`'s next sleep run.
    pub(crate) fn draw_sleep_run(&self, idx: usize, rng: &mut RngStream) -> u64 {
        self.sleep[idx].draw_sleep_run(rng)
    }

    /// Unmatched-subset telemetry from the last processed report
    /// (SIG/HYB only, mirroring `ReportHandler::last_unmatched_subsets`).
    pub(crate) fn last_unmatched_subsets(&self, idx: usize) -> Option<u32> {
        self.sig.as_ref().map(|s| s.last_unmatched[idx])
    }

    /// Starts interval `(from, to]` for awake client `idx`: generates
    /// this interval's query arrivals into its pending list, consuming
    /// `query_rng` exactly like `MobileUnit::begin_awake_interval`.
    /// When `pick` is `Some` (Zipf skew), each arrival's hotspot index
    /// comes from the closure and the uniform draw on `query_rng` is
    /// *not consumed* — mirroring
    /// `MobileUnit::begin_awake_interval_skewed`.
    pub(crate) fn begin_awake_interval_skewed(
        &mut self,
        idx: usize,
        from: SimTime,
        to: SimTime,
        query_rng: &mut RngStream,
        mut pick: Option<&mut dyn FnMut() -> usize>,
    ) {
        self.awake[idx] = true;
        let stats = &mut self.stats[idx];
        stats.intervals_awake += 1;
        let base = idx * self.h;
        for at in self.queries[idx].arrivals_in(from, to, query_rng) {
            let j = match pick.as_deref_mut() {
                Some(pick) => pick(),
                None => query_rng.uniform_index(self.h as u64) as usize,
            };
            let item = self.hotspot_draw[base + j];
            self.pending[idx].push(PendingQuery { item, posed_at: at });
            stats.queries_posed += 1;
        }
    }

    /// Slot of `item` in client `idx`'s hotspot block, if any.
    fn slot_of(&self, idx: usize, item: ItemId) -> Option<usize> {
        let block = &self.slot_items[idx * self.h..idx * self.h + self.h];
        block.binary_search(&item).ok()
    }

    /// Installs an uplink answer: cache the fresh copy under the
    /// request's server timestamp and (SIG/HYB) adopt tracking for the
    /// item's subsets from the last heard report.
    pub(crate) fn install_answer(&mut self, idx: usize, answer: QueryAnswer) {
        let slot = self
            .slot_of(idx, answer.item)
            .expect("uplink answers only items the client queried, i.e. hotspot items");
        let word = idx * self.words + slot / 64;
        let bit = 1u64 << (slot % 64);
        if self.valid[word] & bit == 0 {
            self.valid[word] |= bit;
            self.cached[idx] += 1;
        }
        self.values[idx * self.h + slot] = answer.value;
        self.stamps[idx * self.h + slot] = answer.timestamp;
        if let Some(cap) = &mut self.cap {
            let base = idx * self.h;
            cap.clock[idx] += 1;
            cap.last_used[base + slot] = cap.clock[idx];
            cap.use_count[base + slot] = 1;
            // A fresh install clears any ghost of the item.
            cap.ghost[base + slot] = 0;
            while self.cached[idx] as usize > cap.spec.cap {
                // Same victim scan as `Cache::insert`: the key ends in
                // the item id, so the minimum is unique and the slot
                // order cannot disagree with the boxed table walk.
                let mut victim: Option<([u64; 4], usize)> = None;
                for s in 0..self.h {
                    if self.valid[idx * self.words + s / 64] & (1 << (s % 64)) == 0 {
                        continue;
                    }
                    let key = victim_key(
                        cap.spec.policy,
                        EntryMeta {
                            last_used: cap.last_used[base + s],
                            use_count: cap.use_count[base + s],
                            stamp: self.stamps[base + s],
                        },
                        answer.timestamp,
                        cap.spec.window,
                        self.slot_items[base + s],
                    );
                    if victim.is_none_or(|(best, _)| key < best) {
                        victim = Some((key, s));
                    }
                }
                let (_, vslot) = victim.expect("cache over capacity cannot be empty");
                self.valid[idx * self.words + vslot / 64] &= !(1 << (vslot % 64));
                self.cached[idx] -= 1;
                cap.ghost[base + vslot] = 1;
                cap.ghost_stamps[base + vslot] = self.stamps[base + vslot];
                self.stats[idx].evictions += 1;
            }
        }
        match &self.spec {
            ColumnarSpec::Sig { decoder } => {
                let sig = self.sig.as_mut().expect("SIG fleet has sig columns");
                sig.adopt_tracking(idx, answer.item, decoder);
            }
            ColumnarSpec::Hybrid { hot, decoder, .. } if !hot.contains(answer.item) => {
                let sig = self.sig.as_mut().expect("HYB fleet has sig columns");
                sig.adopt_tracking(idx, answer.item, decoder);
            }
            _ => {}
        }
    }

    /// Records a listened-for-but-missed report (fault injection).
    pub(crate) fn miss_report(&mut self, idx: usize) {
        assert!(
            self.awake[idx],
            "a sleeping unit was not listening for the report"
        );
        self.stats[idx].reports_missed += 1;
    }

    /// Visits every cached entry as `(item, value, timestamp)` in
    /// client order, items ascending — the iteration order of the
    /// boxed-unit safety check.
    pub(crate) fn for_each_cached_entry<F: FnMut(ItemId, u64, SimTime)>(&self, mut f: F) {
        for idx in 0..self.n {
            let base = idx * self.h;
            for slot in 0..self.h {
                if self.valid[idx * self.words + slot / 64] & (1 << (slot % 64)) != 0 {
                    f(
                        self.slot_items[base + slot],
                        self.values[base + slot],
                        self.stamps[base + slot],
                    );
                }
            }
        }
    }

    /// The whole-fleet report sweep: every listening client (the
    /// `heard` awake-slots, client indices `awake[slot]` ascending)
    /// applies the shared payload and answers its pending queries.
    /// Pure per-client work — no randomness, no shared mutation — so
    /// when `threads > 1` and the listening set is large enough the
    /// columns are split at client boundaries into contiguous chunks
    /// and swept by scoped workers; results are returned in ascending
    /// order either way, bit-identical at any worker count.
    pub(crate) fn sweep(
        &mut self,
        heard: &[usize],
        awake: &[usize],
        payload: &FramePayload,
        observing: bool,
        threads: usize,
        par_min: usize,
    ) -> Vec<super::simulation::SweepItem> {
        let prepared = PreparedReport::new(&self.spec, payload);
        let h = self.h;
        let words = self.words;
        if threads > 1 && heard.len() >= par_min {
            let workers = threads.min(heard.len());
            let chunk_len = heard.len().div_ceil(workers);
            let mut out = Vec::with_capacity(heard.len());
            // Progressively split every mutable column at the chunk's
            // last client index; read-only columns are shared whole.
            let slot_items = &self.slot_items;
            let awake_flags = &self.awake;
            let mut valid = &mut self.valid[..];
            let mut stamps = &mut self.stamps[..];
            let mut cached = &mut self.cached[..];
            let mut t_l = &mut self.t_l[..];
            let mut pending = &mut self.pending[..];
            let mut stats = &mut self.stats[..];
            let mut sig_cols = self.sig.as_mut().map(|s| {
                (
                    s.m,
                    &mut s.tracked[..],
                    &mut s.tracked_count[..],
                    &mut s.last_report[..],
                    &mut s.last_unmatched[..],
                )
            });
            let mut cap_cols = self.cap.as_mut().map(|c| {
                (
                    &mut c.last_used[..],
                    &mut c.use_count[..],
                    &mut c.ghost[..],
                    &mut c.ghost_stamps[..],
                    &mut c.clock[..],
                )
            });
            let mut base = 0usize;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for chunk in heard.chunks(chunk_len) {
                    let last_idx = awake[*chunk.last().expect("chunks are non-empty")];
                    let take = last_idx + 1 - base;
                    let (valid_c, valid_r) = valid.split_at_mut(take * words);
                    valid = valid_r;
                    let (stamps_c, stamps_r) = stamps.split_at_mut(take * h);
                    stamps = stamps_r;
                    let (cached_c, cached_r) = cached.split_at_mut(take);
                    cached = cached_r;
                    let (t_l_c, t_l_r) = t_l.split_at_mut(take);
                    t_l = t_l_r;
                    let (pending_c, pending_r) = pending.split_at_mut(take);
                    pending = pending_r;
                    let (stats_c, stats_r) = stats.split_at_mut(take);
                    stats = stats_r;
                    let sig_chunk = match &mut sig_cols {
                        Some((m, tracked, count, last, unmatched)) => {
                            let m = *m;
                            let (tr_c, tr_r) = std::mem::take(tracked).split_at_mut(take * m);
                            *tracked = tr_r;
                            let (ct_c, ct_r) = std::mem::take(count).split_at_mut(take);
                            *count = ct_r;
                            let (lr_c, lr_r) = std::mem::take(last).split_at_mut(take);
                            *last = lr_r;
                            let (um_c, um_r) = std::mem::take(unmatched).split_at_mut(take);
                            *unmatched = um_r;
                            Some(SigChunk {
                                m,
                                tracked: tr_c,
                                tracked_count: ct_c,
                                last_report: lr_c,
                                last_unmatched: um_c,
                            })
                        }
                        None => None,
                    };
                    let cap_chunk = match &mut cap_cols {
                        Some((last_used, use_count, ghost, ghost_stamps, clock)) => {
                            let (lu_c, lu_r) = std::mem::take(last_used).split_at_mut(take * h);
                            *last_used = lu_r;
                            let (uc_c, uc_r) = std::mem::take(use_count).split_at_mut(take * h);
                            *use_count = uc_r;
                            let (gh_c, gh_r) = std::mem::take(ghost).split_at_mut(take * h);
                            *ghost = gh_r;
                            let (gs_c, gs_r) =
                                std::mem::take(ghost_stamps).split_at_mut(take * h);
                            *ghost_stamps = gs_r;
                            let (ck_c, ck_r) = std::mem::take(clock).split_at_mut(take);
                            *clock = ck_r;
                            Some(CapChunk {
                                last_used: lu_c,
                                use_count: uc_c,
                                ghost: gh_c,
                                ghost_stamps: gs_c,
                                clock: ck_c,
                            })
                        }
                        None => None,
                    };
                    let mut view = ChunkView {
                        base,
                        h,
                        words,
                        slot_items,
                        awake: awake_flags,
                        valid: valid_c,
                        stamps: stamps_c,
                        cached: cached_c,
                        t_l: t_l_c,
                        pending: pending_c,
                        stats: stats_c,
                        sig: sig_chunk,
                        cap: cap_chunk,
                    };
                    base = last_idx + 1;
                    let prepared = &prepared;
                    handles.push(scope.spawn(move || {
                        let mut items = Vec::with_capacity(chunk.len());
                        for &slot in chunk {
                            let idx = awake[slot];
                            items.push(sweep_client(&mut view, prepared, idx, slot, observing));
                        }
                        items
                    }));
                }
                for handle in handles {
                    out.extend(handle.join().expect("columnar sweep worker panicked"));
                }
            });
            out
        } else {
            let mut view = ChunkView {
                base: 0,
                h,
                words,
                slot_items: &self.slot_items,
                awake: &self.awake,
                valid: &mut self.valid,
                stamps: &mut self.stamps,
                cached: &mut self.cached,
                t_l: &mut self.t_l,
                pending: &mut self.pending,
                stats: &mut self.stats,
                sig: self.sig.as_mut().map(|s| SigChunk {
                    m: s.m,
                    tracked: &mut s.tracked,
                    tracked_count: &mut s.tracked_count,
                    last_report: &mut s.last_report,
                    last_unmatched: &mut s.last_unmatched,
                }),
                cap: self.cap.as_mut().map(|c| CapChunk {
                    last_used: &mut c.last_used,
                    use_count: &mut c.use_count,
                    ghost: &mut c.ghost,
                    ghost_stamps: &mut c.ghost_stamps,
                    clock: &mut c.clock,
                }),
            };
            heard
                .iter()
                .map(|&slot| {
                    let idx = awake[slot];
                    sweep_client(&mut view, &prepared, idx, slot, observing)
                })
                .collect()
        }
    }
}

impl SigColumns {
    /// `SigHandler::on_fetch`: start tracking the fetched item's
    /// subsets from the last heard report.
    fn adopt_tracking(&mut self, idx: usize, item: ItemId, decoder: &SyndromeDecoder) {
        let last = &self.last_report[idx];
        if last.is_empty() {
            return; // fetched before any report was heard
        }
        let tracked = &mut self.tracked[idx * self.m..(idx + 1) * self.m];
        for j in decoder.family().subsets_of(item) {
            let slot = &mut tracked[j as usize];
            if slot.is_none() {
                *slot = Some(last[j as usize]);
                self.tracked_count[idx] += 1;
            }
        }
    }
}

/// Per-interval report digest hoisted out of the per-client loop: the
/// payload fields every client reads, parsed (and, where the boxed
/// handlers sort a per-client copy, sorted) exactly once.
enum PreparedReport<'a> {
    Ts {
        t_i: SimTime,
        window: SimDuration,
        /// Ascending by item id (the builders emit them sorted; the
        /// hand-built-payload fallback sorts a copy once).
        entries: std::borrow::Cow<'a, [(u64, u64)]>,
    },
    At {
        t_i: SimTime,
        limit: SimDuration,
        ids: &'a [u64],
    },
    Nc {
        t_i: SimTime,
    },
    Group {
        t_i: SimTime,
        limit: SimDuration,
        map: GroupMap,
        /// Changed group ids, sorted.
        changed: Vec<u64>,
    },
    Sig {
        t_i: SimTime,
        decoder: &'a SyndromeDecoder,
        signatures: &'a Arc<Vec<CombinedSignature>>,
    },
    Hybrid {
        t_i: SimTime,
        limit: SimDuration,
        hot: &'a HotSet,
        hot_ids: &'a [u64],
        decoder: &'a SyndromeDecoder,
        signatures: &'a Arc<Vec<CombinedSignature>>,
    },
}

impl<'a> PreparedReport<'a> {
    fn new(spec: &'a ColumnarSpec, payload: &'a FramePayload) -> Self {
        match spec {
            ColumnarSpec::Ts { window } => {
                let (report_ts_micros, entries) = match payload {
                    FramePayload::TimestampReport {
                        report_ts_micros,
                        entries,
                    } => (*report_ts_micros, entries),
                    other => panic!("TS handler fed a non-TS report: {other:?}"),
                };
                let entries = if entries.windows(2).all(|w| w[0].0 < w[1].0) {
                    std::borrow::Cow::Borrowed(entries.as_slice())
                } else {
                    let mut v = entries.clone();
                    v.sort_unstable_by_key(|&(item, _)| item);
                    std::borrow::Cow::Owned(v)
                };
                PreparedReport::Ts {
                    t_i: time_from_micros(report_ts_micros),
                    window: *window,
                    entries,
                }
            }
            ColumnarSpec::At { latency } => {
                let (report_ts_micros, ids) = match payload {
                    FramePayload::AmnesicReport {
                        report_ts_micros,
                        ids,
                    } => (*report_ts_micros, ids),
                    other => panic!("AT handler fed a non-AT report: {other:?}"),
                };
                PreparedReport::At {
                    t_i: time_from_micros(report_ts_micros),
                    limit: gap_limit(*latency),
                    ids,
                }
            }
            ColumnarSpec::NoCache => {
                let t_i = match payload {
                    FramePayload::AmnesicReport {
                        report_ts_micros, ..
                    }
                    | FramePayload::TimestampReport {
                        report_ts_micros, ..
                    }
                    | FramePayload::SignatureReport {
                        report_ts_micros, ..
                    } => time_from_micros(*report_ts_micros),
                    other => panic!("NC handler fed a non-report frame: {other:?}"),
                };
                PreparedReport::Nc { t_i }
            }
            ColumnarSpec::Group { latency, map } => {
                let (report_ts_micros, ids) = match payload {
                    FramePayload::AmnesicReport {
                        report_ts_micros,
                        ids,
                    } => (*report_ts_micros, ids),
                    other => panic!("group handler fed a wrong report: {other:?}"),
                };
                let mut changed = ids.clone();
                changed.sort_unstable();
                PreparedReport::Group {
                    t_i: time_from_micros(report_ts_micros),
                    limit: gap_limit(*latency),
                    map: *map,
                    changed,
                }
            }
            ColumnarSpec::Sig { decoder } => {
                let (report_ts_micros, signatures) = match payload {
                    FramePayload::SignatureReport {
                        report_ts_micros,
                        signatures,
                        ..
                    } => (*report_ts_micros, signatures),
                    other => panic!("SIG handler fed a non-SIG report: {other:?}"),
                };
                PreparedReport::Sig {
                    t_i: time_from_micros(report_ts_micros),
                    decoder,
                    signatures,
                }
            }
            ColumnarSpec::Hybrid {
                latency,
                hot,
                decoder,
            } => {
                let (report_ts_micros, hot_ids, signatures) = match payload {
                    FramePayload::HybridReport {
                        report_ts_micros,
                        hot_ids,
                        signatures,
                        ..
                    } => (*report_ts_micros, hot_ids, signatures),
                    other => panic!("hybrid handler fed a wrong report: {other:?}"),
                };
                PreparedReport::Hybrid {
                    t_i: time_from_micros(report_ts_micros),
                    limit: gap_limit(*latency),
                    hot,
                    hot_ids,
                    decoder,
                    signatures,
                }
            }
        }
    }

    fn report_time(&self) -> SimTime {
        match self {
            PreparedReport::Ts { t_i, .. }
            | PreparedReport::At { t_i, .. }
            | PreparedReport::Nc { t_i }
            | PreparedReport::Group { t_i, .. }
            | PreparedReport::Sig { t_i, .. }
            | PreparedReport::Hybrid { t_i, .. } => *t_i,
        }
    }
}

/// SIG columns of one contiguous client chunk.
struct SigChunk<'a> {
    m: usize,
    tracked: &'a mut [Option<CombinedSignature>],
    tracked_count: &'a mut [usize],
    last_report: &'a mut [Arc<Vec<CombinedSignature>>],
    last_unmatched: &'a mut [u32],
}

/// A contiguous client range of the fleet's columns, local indices
/// rebased by `base`. One chunk per sweep worker; chunks never alias.
struct ChunkView<'a> {
    base: usize,
    h: usize,
    words: usize,
    slot_items: &'a [ItemId],
    awake: &'a [bool],
    valid: &'a mut [u64],
    stamps: &'a mut [SimTime],
    cached: &'a mut [u32],
    t_l: &'a mut [Option<SimTime>],
    pending: &'a mut [Vec<PendingQuery>],
    stats: &'a mut [MuStats],
    sig: Option<SigChunk<'a>>,
    cap: Option<CapChunk<'a>>,
}

impl ChunkView<'_> {
    fn is_valid(&self, local: usize, slot: usize) -> bool {
        self.valid[local * self.words + slot / 64] & (1 << (slot % 64)) != 0
    }

    fn clear_slot(&mut self, local: usize, slot: usize) {
        self.valid[local * self.words + slot / 64] &= !(1 << (slot % 64));
        self.cached[local] -= 1;
    }

    fn clear_cache(&mut self, local: usize) {
        self.valid[local * self.words..(local + 1) * self.words].fill(0);
        self.cached[local] = 0;
        // A whole-cache drop retires the ghosts too (`Cache::clear`):
        // after it *nothing* would have been a hit, so no later miss is
        // attributable to an earlier eviction.
        if let Some(cap) = &mut self.cap {
            cap.ghost[local * self.h..(local + 1) * self.h].fill(0);
        }
    }

    fn item(&self, idx: usize, slot: usize) -> ItemId {
        // slot_items is the full shared column, indexed by the global
        // client index.
        self.slot_items[idx * self.h + slot]
    }

    fn slot_of(&self, idx: usize, item: ItemId) -> Option<usize> {
        self.slot_items[idx * self.h..(idx + 1) * self.h]
            .binary_search(&item)
            .ok()
    }

    /// Cached item ids of client `idx`, ascending (= the dense cache's
    /// `sorted_items`).
    fn cached_items(&self, local: usize, idx: usize) -> Vec<ItemId> {
        let mut out = Vec::with_capacity(self.cached[local] as usize);
        for slot in 0..self.h {
            if self.is_valid(local, slot) {
                out.push(self.item(idx, slot));
            }
        }
        out
    }

    fn restamp_all(&mut self, local: usize, t_i: SimTime) {
        for slot in 0..self.h {
            if self.is_valid(local, slot) {
                self.stamps[local * self.h + slot] = t_i;
            }
        }
    }
}

/// One client's share of the report sweep: the columnar transcription
/// of `MobileUnit::hear_report_and_answer` (strategy processing,
/// latency accounting, hit/miss events, deduplicated uplink requests).
/// `idx` is the global client index, `local = idx - view.base` its
/// position inside the chunk.
fn sweep_client(
    view: &mut ChunkView<'_>,
    prepared: &PreparedReport<'_>,
    idx: usize,
    awake_slot: usize,
    observing: bool,
) -> super::simulation::SweepItem {
    assert!(view.awake[idx], "a sleeping unit cannot hear a report");
    let local = idx - view.base;
    let pre = if observing {
        Some((view.stats[local], view.t_l[local]))
    } else {
        None
    };
    let outcome = process_report(view, prepared, local, idx);
    let t_i = outcome.report_time;
    let stats = &mut view.stats[local];
    for q in &view.pending[local] {
        let lat = t_i.saturating_duration_since(q.posed_at).as_secs();
        stats.latency_sum_secs += lat;
        if lat > stats.latency_max_secs {
            stats.latency_max_secs = lat;
        }
    }
    view.t_l[local] = Some(t_i);
    if outcome.dropped_all {
        stats.cache_drops += 1;
    }
    stats.items_invalidated += outcome.invalidated.len() as u64;
    // Answer Q_i: one event per distinct pending item.
    let mut seen: Vec<ItemId> = view.pending[local].iter().map(|q| q.item).collect();
    seen.sort_unstable();
    seen.dedup();
    let mut uplink = Vec::new();
    for item in seen {
        let slot = view.slot_of(idx, item);
        let hit = slot.is_some_and(|slot| view.is_valid(local, slot));
        // Mirror `Cache::get`: the access clock ticks on every read,
        // hit or miss; a hit also bumps recency and the LFU count.
        if let Some(cap) = &mut view.cap {
            cap.clock[local] += 1;
            if hit {
                let at = local * view.h + slot.expect("hits have a slot");
                cap.last_used[at] = cap.clock[local];
                cap.use_count[at] += 1;
            }
        }
        if hit {
            view.stats[local].hit_events += 1;
        } else {
            view.stats[local].miss_events += 1;
            // `Cache::take_ghost`: classify the requery of an evicted
            // copy — fresh ghost ⇒ the capacity bound caused this miss.
            if let (Some(cap), Some(slot)) = (&mut view.cap, slot) {
                let at = local * view.h + slot;
                match cap.ghost[at] {
                    1 => {
                        view.stats[local].capacity_misses += 1;
                        view.stats[local].evicted_then_requeried += 1;
                    }
                    2 => view.stats[local].evicted_then_requeried += 1,
                    _ => {}
                }
                cap.ghost[at] = 0;
            }
            // Piggyback histories are ineligible for the columnar
            // fleet, so the uplink request never carries one.
            uplink.push((item, None));
        }
    }
    view.pending[local].clear();
    super::simulation::SweepItem {
        slot: awake_slot,
        pre,
        migrated_pre_len: None,
        outcome: IntervalReport {
            awake: true,
            outcome: Some(outcome),
            uplink_requests: uplink,
        },
    }
}

/// The strategy kernels: each arm is a line-for-line transcription of
/// the corresponding `ReportHandler::process` over the slot block.
fn process_report(
    view: &mut ChunkView<'_>,
    prepared: &PreparedReport<'_>,
    local: usize,
    idx: usize,
) -> ProcessOutcome {
    let t_i = prepared.report_time();
    match prepared {
        PreparedReport::Ts {
            window, entries, ..
        } => {
            let gap_too_large = match view.t_l[local] {
                Some(t_l) => t_i.saturating_duration_since(t_l) > *window,
                None => view.cached[local] > 0, // never heard a report: nothing provable
            };
            if gap_too_large {
                view.clear_cache(local);
                return ProcessOutcome {
                    report_time: t_i,
                    dropped_all: true,
                    invalidated: Vec::new(),
                    revalidated: 0,
                };
            }
            let mut invalidated = Vec::new();
            for slot in 0..view.h {
                if !view.is_valid(local, slot) {
                    continue;
                }
                let item = view.item(idx, slot);
                let cached_micros = time_to_micros(view.stamps[local * view.h + slot]);
                match entries
                    .binary_search_by_key(&item, |&(reported_item, _)| reported_item)
                    .ok()
                    .map(|ix| entries[ix].1)
                {
                    Some(t_j) if cached_micros < t_j => {
                        view.clear_slot(local, slot);
                        invalidated.push(item);
                    }
                    _ => view.stamps[local * view.h + slot] = t_i,
                }
            }
            // Ghost retire (`Cache::ghosts_mark_stale`): a report entry
            // [j, t_j] newer than an evicted copy's stamp proves that
            // copy would have been dropped anyway — the eviction cost
            // nothing.
            if let Some(cap) = &mut view.cap {
                for slot in 0..view.h {
                    let at = local * view.h + slot;
                    if cap.ghost[at] != 1 {
                        continue;
                    }
                    let item = view.slot_items[idx * view.h + slot];
                    let stamp_micros = time_to_micros(cap.ghost_stamps[at]);
                    if entries
                        .binary_search_by_key(&item, |&(reported_item, _)| reported_item)
                        .ok()
                        .is_some_and(|ix| stamp_micros < entries[ix].1)
                    {
                        cap.ghost[at] = 2;
                    }
                }
            }
            // Slot order is ascending item id, so `invalidated` is
            // already sorted — same output as the dense-cache walk.
            let revalidated = view.cached[local] as usize;
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated,
                revalidated,
            }
        }
        PreparedReport::At { limit, ids, .. } => {
            let gap_too_large = match view.t_l[local] {
                Some(t_l) => t_i.saturating_duration_since(t_l) > *limit,
                None => view.cached[local] > 0,
            };
            if gap_too_large {
                view.clear_cache(local);
                return ProcessOutcome {
                    report_time: t_i,
                    dropped_all: true,
                    invalidated: Vec::new(),
                    revalidated: 0,
                };
            }
            let mut invalidated = Vec::new();
            for &item in *ids {
                if let Some(slot) = view.slot_of(idx, item) {
                    if view.is_valid(local, slot) {
                        view.clear_slot(local, slot);
                        invalidated.push(item);
                    }
                    // `Cache::ghost_mark_stale_item`: a reported id
                    // changed this interval, so any evicted copy of it
                    // is provably stale — the eviction cost nothing.
                    if let Some(cap) = &mut view.cap {
                        let at = local * view.h + slot;
                        if cap.ghost[at] != 0 {
                            cap.ghost[at] = 2;
                        }
                    }
                }
            }
            view.restamp_all(local, t_i);
            let revalidated = view.cached[local] as usize;
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated,
                revalidated,
            }
        }
        PreparedReport::Nc { .. } => {
            view.clear_cache(local);
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated: Vec::new(),
                revalidated: 0,
            }
        }
        PreparedReport::Group {
            limit,
            map,
            changed,
            ..
        } => {
            let gap_too_large = match view.t_l[local] {
                Some(t_l) => t_i.saturating_duration_since(t_l) > *limit,
                None => view.cached[local] > 0,
            };
            if gap_too_large {
                view.clear_cache(local);
                return ProcessOutcome {
                    report_time: t_i,
                    dropped_all: true,
                    invalidated: Vec::new(),
                    revalidated: 0,
                };
            }
            let mut invalidated = Vec::new();
            for slot in 0..view.h {
                if !view.is_valid(local, slot) {
                    continue;
                }
                let item = view.item(idx, slot);
                if changed.binary_search(&map.group_of(item)).is_ok() {
                    view.clear_slot(local, slot);
                    invalidated.push(item);
                } else {
                    view.stamps[local * view.h + slot] = t_i;
                }
            }
            let revalidated = view.cached[local] as usize;
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated,
                revalidated,
            }
        }
        PreparedReport::Sig {
            decoder,
            signatures,
            ..
        } => {
            let cached_items = view.cached_items(local, idx);
            let sig = view.sig.as_mut().expect("SIG sweep has sig columns");
            let m = sig.m;
            let tracked = &sig.tracked[local * m..(local + 1) * m];
            let diagnosis =
                decoder.diagnose(&cached_items, |j| tracked[j as usize], signatures);
            sig.last_unmatched[local] = diagnosis.unmatched_subsets;
            for &item in &diagnosis.invalidated {
                let slot = view
                    .slot_of(idx, item)
                    .expect("diagnosed items come from the cache");
                view.clear_slot(local, slot);
            }
            // Re-scope tracking to the surviving cache and adopt the
            // broadcast signatures.
            let sig = view.sig.as_mut().expect("SIG sweep has sig columns");
            sig.tracked[local * m..(local + 1) * m].fill(None);
            sig.tracked_count[local] = 0;
            for slot in 0..view.h {
                if view.valid[local * view.words + slot / 64] & (1 << (slot % 64)) == 0 {
                    continue;
                }
                let item = view.slot_items[idx * view.h + slot];
                let sig = view.sig.as_mut().expect("SIG sweep has sig columns");
                for j in decoder.family().subsets_of(item) {
                    let cell = &mut sig.tracked[local * m + j as usize];
                    if cell.is_none() {
                        sig.tracked_count[local] += 1;
                    }
                    *cell = Some(signatures[j as usize]);
                }
            }
            view.restamp_all(local, t_i);
            let sig = view.sig.as_mut().expect("SIG sweep has sig columns");
            sig.last_report[local] = Arc::clone(signatures);
            let revalidated = view.cached[local] as usize;
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated: diagnosis.invalidated,
                revalidated,
            }
        }
        PreparedReport::Hybrid {
            limit,
            hot,
            hot_ids,
            decoder,
            signatures,
            ..
        } => {
            let mut invalidated = Vec::new();
            // Hot half: AT semantics, scoped to hot items only.
            let missed_report = match view.t_l[local] {
                Some(t_l) => t_i.saturating_duration_since(t_l) > *limit,
                None => true,
            };
            if missed_report {
                for slot in 0..view.h {
                    if !view.is_valid(local, slot) {
                        continue;
                    }
                    let item = view.item(idx, slot);
                    if hot.contains(item) {
                        view.clear_slot(local, slot);
                        invalidated.push(item);
                    }
                }
            } else {
                for &item in *hot_ids {
                    if let Some(slot) = view.slot_of(idx, item) {
                        if view.is_valid(local, slot) {
                            view.clear_slot(local, slot);
                            invalidated.push(item);
                        }
                    }
                }
            }
            // Cold half: SIG semantics over the remaining cached items.
            let cold_items: Vec<ItemId> = {
                let mut out = Vec::with_capacity(view.cached[local] as usize);
                for slot in 0..view.h {
                    if view.is_valid(local, slot) {
                        let item = view.item(idx, slot);
                        if !hot.contains(item) {
                            out.push(item);
                        }
                    }
                }
                out
            };
            let sig = view.sig.as_mut().expect("HYB sweep has sig columns");
            let m = sig.m;
            let tracked = &sig.tracked[local * m..(local + 1) * m];
            let diagnosis =
                decoder.diagnose(&cold_items, |j| tracked[j as usize], signatures);
            sig.last_unmatched[local] = diagnosis.unmatched_subsets;
            for &item in &diagnosis.invalidated {
                let slot = view
                    .slot_of(idx, item)
                    .expect("diagnosed items come from the cache");
                view.clear_slot(local, slot);
                invalidated.push(item);
            }
            let sig = view.sig.as_mut().expect("HYB sweep has sig columns");
            sig.tracked[local * m..(local + 1) * m].fill(None);
            sig.tracked_count[local] = 0;
            for slot in 0..view.h {
                if view.valid[local * view.words + slot / 64] & (1 << (slot % 64)) == 0 {
                    continue;
                }
                let item = view.slot_items[idx * view.h + slot];
                if hot.contains(item) {
                    continue;
                }
                let sig = view.sig.as_mut().expect("HYB sweep has sig columns");
                for j in decoder.family().subsets_of(item) {
                    let cell = &mut sig.tracked[local * m + j as usize];
                    if cell.is_none() {
                        sig.tracked_count[local] += 1;
                    }
                    *cell = Some(signatures[j as usize]);
                }
            }
            let sig = view.sig.as_mut().expect("HYB sweep has sig columns");
            sig.last_report[local] = Arc::clone(signatures);
            view.restamp_all(local, t_i);
            let revalidated = view.cached[local] as usize;
            ProcessOutcome {
                report_time: t_i,
                dropped_all: false,
                invalidated,
                revalidated,
            }
        }
    }
}
