//! The no-stale-reads invariant checker.
//!
//! §2's safety contract: "our schemes will only allow false alarm
//! errors and will always correctly inform the client if his copy is
//! invalid. The validity of the client's copy is only guaranteed as of
//! the last invalidation report."
//!
//! [`ValueHistory`] shadows the database with the full update history
//! so the simulation can ask, after every report, whether each cached
//! entry's value really was the item's value at the entry's validity
//! timestamp. TS and AT must never violate this; SIG may, with small
//! probability (signature collision or the documented fetch-window
//! blind spot), and the checker *counts* violations instead of
//! asserting so the tests can bound the rate.

use std::collections::HashMap;

use sw_server::{ItemId, UpdateRecord};
use sw_sim::SimTime;

/// Full value history of every item, for invariant checking only.
///
/// Hashed maps are fine here: the checker runs only in tests and debug
/// harnesses (`check_safety` mode), never on the simulation hot path.
#[derive(Debug, Clone, Default)]
pub struct ValueHistory {
    /// Per item: (update time, new value), in time order; the implicit
    /// first entry is the initial value at `t = 0`.
    histories: HashMap<ItemId, Vec<(SimTime, u64)>>,
    initial: HashMap<ItemId, u64>,
}

impl ValueHistory {
    /// Creates the history with the database's initial values.
    pub fn new<F: FnMut(ItemId) -> u64>(n: u64, mut initial: F) -> Self {
        ValueHistory {
            histories: HashMap::new(),
            initial: (0..n).map(|i| (i, initial(i))).collect(),
        }
    }

    /// Records one applied update.
    pub fn record(&mut self, rec: &UpdateRecord) {
        self.histories
            .entry(rec.item)
            .or_default()
            .push((rec.at, rec.value));
    }

    /// The item's value as of time `t` (the last update at or before
    /// `t`, else the initial value).
    pub fn value_at(&self, item: ItemId, t: SimTime) -> u64 {
        let initial = *self
            .initial
            .get(&item)
            .expect("item must exist in the initial snapshot");
        match self.histories.get(&item) {
            None => initial,
            Some(h) => {
                // Binary search for the last update ≤ t.
                let idx = h.partition_point(|&(at, _)| at <= t);
                if idx == 0 {
                    initial
                } else {
                    h[idx - 1].1
                }
            }
        }
    }

    /// Checks one cached entry: is `value` what the item held at
    /// `valid_as_of`?
    pub fn is_consistent(&self, item: ItemId, value: u64, valid_as_of: SimTime) -> bool {
        self.value_at(item, valid_as_of) == value
    }
}

/// Violation counters kept by the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafetyStats {
    /// Cache entries checked.
    pub entries_checked: u64,
    /// Entries whose value did not match the history (stale reads
    /// waiting to happen).
    pub violations: u64,
}

impl SafetyStats {
    /// Violation rate over checked entries.
    pub fn violation_rate(&self) -> f64 {
        if self.entries_checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.entries_checked as f64
        }
    }

    /// Checks the counters against a strategy's contract. `Ok(())`
    /// when the run satisfied the expectation, `Err` with a diagnostic
    /// otherwise.
    pub fn verify(&self, expectation: SafetyExpectation) -> Result<(), String> {
        match expectation {
            SafetyExpectation::NeverStale => {
                if self.violations == 0 {
                    Ok(())
                } else {
                    Err(format!(
                        "never-stale strategy produced {} false validations over {} checks",
                        self.violations, self.entries_checked
                    ))
                }
            }
            SafetyExpectation::BoundedRate(bound) => {
                let rate = self.violation_rate();
                if rate <= bound {
                    Ok(())
                } else {
                    Err(format!(
                        "violation rate {rate:.6} exceeds documented bound {bound} \
                         ({} violations / {} checks)",
                        self.violations, self.entries_checked
                    ))
                }
            }
            SafetyExpectation::QuasiByDesign => Ok(()),
        }
    }
}

/// What the no-stale-reads checker may legitimately find for a given
/// strategy — the per-strategy safety contract of §2/§3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SafetyExpectation {
    /// Zero false validations, under *any* fault schedule: the strategy
    /// turns every uncertain gap into a drop (AT, the window rule of
    /// TS) or never caches at all (NC). This is the invariant the fault
    /// injector exists to attack.
    NeverStale,
    /// False validations occur with small probability — signature
    /// collisions (≈ `2^-g` per unmatched pair) plus the documented
    /// one-interval fetch blind spot — and must stay under the given
    /// rate over checked entries.
    BoundedRate(f64),
    /// The checker flags entries *by design*: quasi-copies tolerate
    /// bounded staleness (§7), so strict value comparison is the wrong
    /// oracle and no assertion is made.
    QuasiByDesign,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(item: ItemId, at: f64, value: u64) -> UpdateRecord {
        UpdateRecord {
            item,
            at: SimTime::from_secs(at),
            value,
            previous: 0,
        }
    }

    #[test]
    fn initial_value_before_any_update() {
        let h = ValueHistory::new(3, |i| i * 100);
        assert_eq!(h.value_at(2, SimTime::from_secs(5.0)), 200);
    }

    #[test]
    fn value_at_steps_through_updates() {
        let mut h = ValueHistory::new(1, |_| 0);
        h.record(&rec(0, 10.0, 1));
        h.record(&rec(0, 20.0, 2));
        assert_eq!(h.value_at(0, SimTime::from_secs(9.9)), 0);
        assert_eq!(h.value_at(0, SimTime::from_secs(10.0)), 1);
        assert_eq!(h.value_at(0, SimTime::from_secs(19.9)), 1);
        assert_eq!(h.value_at(0, SimTime::from_secs(20.0)), 2);
        assert_eq!(h.value_at(0, SimTime::from_secs(1e6)), 2);
    }

    #[test]
    fn consistency_check() {
        let mut h = ValueHistory::new(1, |_| 7);
        h.record(&rec(0, 10.0, 9));
        assert!(h.is_consistent(0, 7, SimTime::from_secs(5.0)));
        assert!(h.is_consistent(0, 9, SimTime::from_secs(15.0)));
        assert!(!h.is_consistent(0, 7, SimTime::from_secs(15.0)));
    }

    #[test]
    fn stats_rate() {
        let s = SafetyStats {
            entries_checked: 100,
            violations: 3,
        };
        assert!((s.violation_rate() - 0.03).abs() < 1e-12);
        assert_eq!(SafetyStats::default().violation_rate(), 0.0);
    }

    #[test]
    fn never_stale_rejects_any_violation() {
        let clean = SafetyStats {
            entries_checked: 10,
            violations: 0,
        };
        assert!(clean.verify(SafetyExpectation::NeverStale).is_ok());
        let dirty = SafetyStats {
            entries_checked: 10,
            violations: 1,
        };
        assert!(dirty.verify(SafetyExpectation::NeverStale).is_err());
    }

    #[test]
    fn bounded_rate_compares_against_bound() {
        let s = SafetyStats {
            entries_checked: 1000,
            violations: 5,
        };
        assert!(s.verify(SafetyExpectation::BoundedRate(0.01)).is_ok());
        assert!(s.verify(SafetyExpectation::BoundedRate(0.001)).is_err());
        // Quasi-copies are never asserted on.
        assert!(s.verify(SafetyExpectation::QuasiByDesign).is_ok());
    }
}
