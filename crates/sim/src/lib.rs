//! # sw-sim — discrete-event simulation kernel
//!
//! Substrate crate for the *Sleepers and Workaholics* reproduction
//! (Barbará & Imieliński, SIGMOD 1994 / VLDB Journal 1995).
//!
//! The paper's evaluation model is a cell in which a stateless server
//! broadcasts an invalidation report every `L` seconds while mobile units
//! issue queries, sleep, and wake. This crate provides the generic pieces
//! every higher layer builds on:
//!
//! * [`time`] — a virtual clock ([`SimTime`]) measured in seconds with
//!   total ordering and interval arithmetic;
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with
//!   stable FIFO tie-breaking;
//! * [`rng`] — reproducible, stream-split random number generation
//!   ([`RngStream`]) so that e.g. the update process and each client's
//!   query process draw from independent, replayable streams;
//! * [`process`] — the stochastic processes the paper assumes: Poisson
//!   arrivals with exponential inter-arrival times (queries at rate λ,
//!   updates at rate μ) and the per-interval Bernoulli sleep process
//!   (probability `s` of being disconnected in an interval);
//! * [`stats`] — streaming statistics (Welford mean/variance, counters,
//!   fixed-bucket histograms) used by the metrics layer;
//! * [`runner`] — the order-preserving parallel sweep runner
//!   ([`ParallelRunner`]) and the two deterministic seed-derivation
//!   domains ([`cell_seed`] for figure sweeps, [`mesh_seed`] for mesh
//!   shards).
//!
//! All randomness is deterministic given a master seed, which makes the
//! integration tests and the figure-regeneration experiments replayable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod process;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use process::{BernoulliIntervalProcess, IntervalClock, PoissonProcess};
pub use rng::{MasterSeed, RngStream, StreamId};
pub use runner::{cell_seed, mesh_seed, ParallelRunner};
pub use stats::{Counter, Histogram, RatioEstimator, Welford};
pub use time::{SimDuration, SimTime};
