//! The parallel sweep runner.
//!
//! Every experiment in this workspace is a grid: (scenario × strategy ×
//! x-value) cells, each an independent `CellSimulation` run with its own
//! deterministically derived seed. [`ParallelRunner`] shards such grids
//! across OS threads with a work-stealing index, preserving input order
//! in the output. Because each cell's seed is a pure function of the
//! cell (see [`cell_seed`]) and never of scheduling, results are
//! bit-identical at any thread count — a property the determinism test
//! suite pins across 1, 2, and 8 threads.
//!
//! The mesh layer shards differently: its work items are the *live*
//! `CellSimulation` shards themselves, stepped in place between
//! migration barriers. [`ParallelRunner::run_mut`] covers that case —
//! same cursor, same order guarantee, but each item is handed to
//! exactly one worker by `&mut`.
//!
//! Seed domains: figure sweeps derive per-run seeds with [`cell_seed`];
//! the mesh derives per-shard seeds with [`mesh_seed`]. The two mixers
//! use different salts, so a figure run and a mesh shard can never
//! alias onto the same stream family even if their coordinate words
//! coincide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Shards independent work items across threads, preserving order.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    threads: usize,
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ParallelRunner {
    /// A runner with an explicit thread count (`0` = auto-detect).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            detected_parallelism()
        } else {
            threads
        };
        ParallelRunner { threads }
    }

    /// Thread count from `SW_THREADS`, else the machine's parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("SW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(detected_parallelism);
        ParallelRunner { threads }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every item, fanning across threads; `out[i]` is
    /// `f(i, &items[i])`. Items are claimed by an atomic cursor, so
    /// long cells do not convoy behind short ones; output order is the
    /// input order regardless of which thread ran what.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn run<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len()).max(1);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(i, &items[i]);
                    *slots[i].lock().expect("unpoisoned slot") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("unpoisoned slot")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// Runs `f` over every item by `&mut`, fanning across threads;
    /// `out[i]` is `f(i, &mut items[i])`. The atomic cursor hands each
    /// index to exactly one worker, so the mutable borrows are disjoint
    /// by construction. This is how the mesh steps its live
    /// `CellSimulation` shards between migration barriers: the shards
    /// mutate in place, and because each shard's randomness comes only
    /// from its own streams, the interleaving of workers cannot affect
    /// any result.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn run_mut<I, O, F>(&self, items: &mut [I], f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, &mut I) -> O + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len()).max(1);
        if workers == 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, it)| f(i, it))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        // Wrap each item so workers can claim disjoint &mut access
        // without unsafe: the cursor yields every index exactly once,
        // and the Mutex proves exclusivity to the borrow checker.
        let cells: Vec<Mutex<&mut I>> = items.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let mut item = cells[i].lock().expect("unpoisoned item");
                    let out = f(i, &mut item);
                    *slots[i].lock().expect("unpoisoned slot") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("unpoisoned slot")
                    .expect("every slot filled")
            })
            .collect()
    }
}

fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives a per-cell seed from a master seed and the cell's coordinate
/// words (e.g. `[x.to_bits(), strategy_tag]`). Pure in its inputs —
/// never dependent on scheduling — which is what keeps sweep results
/// thread-count-invariant. Uses SplitMix64-style mixing.
pub fn cell_seed(master: u64, coords: &[u64]) -> u64 {
    seed_in_domain(0xA076_1D64_78BD_642F, master, coords)
}

/// Derives a per-shard seed for the mesh layer. Same mixer as
/// [`cell_seed`] but salted into a different domain, so a mesh shard
/// and a figure-sweep run can never collide on a seed even when their
/// coordinate words happen to match (e.g. mesh cell 2 vs figure x-point
/// 2 under the same master seed).
pub fn mesh_seed(master: u64, coords: &[u64]) -> u64 {
    seed_in_domain(0x8B65_5970_1B4E_27C5, master, coords)
}

fn seed_in_domain(salt: u64, master: u64, coords: &[u64]) -> u64 {
    let mut state = master ^ salt;
    for (i, &c) in coords.iter().enumerate() {
        state = mix64(state ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64 + 1));
    }
    mix64(state)
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8] {
            let out = ParallelRunner::new(threads).run(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let r = ParallelRunner::new(4);
        let empty: Vec<u64> = vec![];
        assert!(r.run(&empty, |_, &x| x).is_empty());
        assert_eq!(r.run(&[7u64], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let baseline = ParallelRunner::new(1).run(&items, |i, &x| cell_seed(x, &[i as u64]));
        for threads in [2, 8] {
            let out = ParallelRunner::new(threads).run(&items, |i, &x| cell_seed(x, &[i as u64]));
            assert_eq!(out, baseline, "{threads} threads");
        }
    }

    #[test]
    fn run_mut_touches_every_item_exactly_once() {
        for threads in [1, 2, 8] {
            let mut items: Vec<u64> = vec![0; 257];
            let out = ParallelRunner::new(threads).run_mut(&mut items, |i, x| {
                *x += 1;
                i as u64
            });
            assert!(items.iter().all(|&x| x == 1), "{threads} threads");
            assert_eq!(out, (0..257).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn run_mut_handles_empty_and_single() {
        let r = ParallelRunner::new(4);
        let mut empty: Vec<u64> = vec![];
        assert!(r.run_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = vec![7u64];
        assert_eq!(r.run_mut(&mut one, |_, x| *x + 1), vec![8]);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn cell_seed_separates_coordinates() {
        // Distinct coordinates must give distinct seeds (these are the
        // actual collision pairs the old ad-hoc XOR seeding had: TS vs
        // AT vs NC all have 2-letter names).
        let a = cell_seed(1, &[0, 1]);
        let b = cell_seed(1, &[0, 2]);
        let c = cell_seed(1, &[1, 0]);
        let d = cell_seed(1, &[0, 1, 0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, cell_seed(1, &[0, 1]));
    }

    #[test]
    fn mesh_seed_is_a_separate_domain() {
        // The mesh must never reuse a figure sweep's seeds: equal
        // master + equal coordinates still land in different domains.
        for coords in [&[0u64][..], &[0, 1], &[3, 7, 11]] {
            assert_ne!(
                cell_seed(0xF1650, coords),
                mesh_seed(0xF1650, coords),
                "domains collided at {coords:?}"
            );
        }
        // And mesh_seed is still a pure function of its inputs.
        assert_eq!(mesh_seed(5, &[1, 2]), mesh_seed(5, &[1, 2]));
        assert_ne!(mesh_seed(5, &[1, 2]), mesh_seed(5, &[2, 1]));
    }

    #[test]
    fn explicit_zero_means_auto() {
        assert!(ParallelRunner::new(0).threads() >= 1);
    }
}
