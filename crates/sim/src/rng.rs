//! Reproducible, stream-split random number generation.
//!
//! The simulation draws randomness in many logically independent places:
//! the server's update process, each mobile unit's query process and
//! sleep process, and the SIG subset membership function. If all of these
//! shared one generator, adding a client or reordering a loop would
//! perturb every other stream and make runs impossible to compare. We
//! instead derive one independent [`RngStream`] per (component, index)
//! pair from a single [`MasterSeed`] via the SplitMix64 mixing function,
//! so streams are stable under unrelated code changes.

/// Identifies a logical random stream (component kind + index within it).
///
/// The discriminants feed the seed derivation, so *adding* variants is
/// safe but reordering them changes every derived stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// The server's item-update process.
    Updates,
    /// Query arrivals at mobile unit `index`.
    Queries {
        /// Client index within the cell.
        index: u64,
    },
    /// Sleep/wake draws at mobile unit `index`.
    Sleep {
        /// Client index within the cell.
        index: u64,
    },
    /// Initial value assignment / hotspot selection for client `index`.
    Hotspot {
        /// Client index within the cell.
        index: u64,
    },
    /// SIG combined-subset membership derivation.
    Signatures,
    /// Initial database contents.
    Database,
    /// Anything else, keyed by caller-chosen tag.
    Custom {
        /// Caller-chosen tag.
        tag: u64,
    },
    /// Fault-injection draws (loss, corruption, retry, drift) for mobile
    /// unit `index`.
    Faults {
        /// Client index within the cell.
        index: u64,
    },
    /// Mobility draws (cell-crossing decisions and destination picks)
    /// for the mesh-global client `index`. Appended for the mesh layer:
    /// single-cell runs never touch it, so every pre-mesh stream — and
    /// therefore every committed figure artifact — is unchanged.
    Mobility {
        /// Global client index within the mesh (home cell × per-cell
        /// population + home slot).
        index: u64,
    },
    /// Query-plane draws (predicate footprints, query/txn arrivals) for
    /// mobile unit `index`. Appended for the query-result cache layer:
    /// runs without a query plane never touch it, so every existing
    /// stream — and every committed figure artifact — is unchanged.
    QueryPlan {
        /// Client index within the cell.
        index: u64,
    },
    /// Zipf-skewed item picks for mobile unit `index` when the bounded-
    /// cache workload arms query skew. Appended for the capacity layer:
    /// runs without a Zipf exponent never touch it, so every existing
    /// stream — and every committed figure artifact — is unchanged.
    ZipfQuery {
        /// Client index within the cell.
        index: u64,
    },
}

impl StreamId {
    fn mix_words(self) -> (u64, u64) {
        match self {
            StreamId::Updates => (1, 0),
            StreamId::Queries { index } => (2, index),
            StreamId::Sleep { index } => (3, index),
            StreamId::Hotspot { index } => (4, index),
            StreamId::Signatures => (5, 0),
            StreamId::Database => (6, 0),
            StreamId::Custom { tag } => (7, tag),
            StreamId::Faults { index } => (8, index),
            StreamId::Mobility { index } => (9, index),
            StreamId::QueryPlan { index } => (10, index),
            StreamId::ZipfQuery { index } => (11, index),
        }
    }
}

/// The root of all randomness for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterSeed(pub u64);

impl MasterSeed {
    /// A fixed seed used throughout the test-suite for replayability.
    pub const TEST: MasterSeed = MasterSeed(0x5EED_CAFE_F00D_D00D);

    /// Derives the independent stream for `id`.
    pub fn stream(self, id: StreamId) -> RngStream {
        let (kind, index) = id.mix_words();
        let mut state = self.0;
        state = splitmix64(state ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        state = splitmix64(state ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        // Seed the xoshiro state from four further SplitMix64 outputs,
        // the initialization its authors recommend.
        let mut s = state;
        let mut words = [0u64; 4];
        for w in &mut words {
            s = splitmix64(s);
            *w = s;
        }
        RngStream { s: words }
    }
}

/// SplitMix64: a small, well-distributed 64-bit mixing function used only
/// for seed derivation (the draws themselves come from xoshiro256++).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One independent, reproducible random stream.
///
/// Backed by an in-tree xoshiro256++ generator (Blackman & Vigna) so
/// the workspace has no external RNG dependency and the hot path pays
/// four shifts and an add per word instead of a ChaCha block.
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
}

impl RngStream {
    /// Uniform draw in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's unbiased multiply-shift
    /// rejection method).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn uniform_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_index bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential draw with the given `rate` (mean `1/rate`).
    ///
    /// This is the inter-arrival distribution of the paper's query and
    /// update processes (§4: "Updates occur following an exponential
    /// distribution, at an update rate of μ per item").
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        // Inverse-CDF sampling; 1 - u avoids ln(0).
        let u: f64 = self.uniform();
        -(1.0 - u).ln() / rate
    }

    /// A fresh 64-bit word (used for item values).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Fisher–Yates sample of `count` distinct indices out of `[0, n)`.
    /// Used to pick hotspot items for a client.
    pub fn sample_distinct(&mut self, n: u64, count: usize) -> Vec<u64> {
        assert!(
            (count as u64) <= n,
            "cannot sample {count} distinct values from a universe of {n}"
        );
        // Partial Fisher–Yates over a sparse permutation map keeps this
        // O(count) even when n is 10^6 (Scenario 2/4 database sizes).
        use std::collections::HashMap;
        let mut swaps: HashMap<u64, u64> = HashMap::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let j = i + self.uniform_index(n - i);
            let vi = *swaps.get(&i).unwrap_or(&i);
            let vj = *swaps.get(&j).unwrap_or(&j);
            out.push(vj);
            swaps.insert(j, vi);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let seed = MasterSeed(42);
        let mut a = seed.stream(StreamId::Updates);
        let mut b = seed.stream(StreamId::Updates);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_are_independent() {
        let seed = MasterSeed(42);
        let mut a = seed.stream(StreamId::Updates);
        let mut b = seed.stream(StreamId::Queries { index: 0 });
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "distinct streams should not collide");
    }

    #[test]
    fn client_streams_differ_by_index() {
        let seed = MasterSeed(7);
        let mut a = seed.stream(StreamId::Queries { index: 1 });
        let mut b = seed.stream(StreamId::Queries { index: 2 });
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fault_streams_are_independent_of_existing_streams() {
        let seed = MasterSeed(42);
        // The fault stream for client i must collide with neither the
        // client's other streams nor the Custom tag space.
        for other in [
            StreamId::Queries { index: 3 },
            StreamId::Sleep { index: 3 },
            StreamId::Hotspot { index: 3 },
            StreamId::Custom { tag: 3 },
            StreamId::Custom { tag: 8 },
        ] {
            let mut a = seed.stream(StreamId::Faults { index: 3 });
            let mut b = seed.stream(other);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0, "Faults stream collided with {other:?}");
        }
    }

    #[test]
    fn mobility_streams_are_independent_of_existing_streams() {
        let seed = MasterSeed(42);
        // The mobility stream for global client g must collide with
        // neither the same-index per-client streams nor the tag spaces
        // that could alias its discriminant.
        for other in [
            StreamId::Queries { index: 3 },
            StreamId::Sleep { index: 3 },
            StreamId::Hotspot { index: 3 },
            StreamId::Faults { index: 3 },
            StreamId::Custom { tag: 3 },
            StreamId::Custom { tag: 9 },
        ] {
            let mut a = seed.stream(StreamId::Mobility { index: 3 });
            let mut b = seed.stream(other);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0, "Mobility stream collided with {other:?}");
        }
    }

    #[test]
    fn query_plan_streams_are_independent_of_existing_streams() {
        let seed = MasterSeed(42);
        // The query-plane stream for client i must collide with neither
        // the client's other streams nor the tag spaces that could alias
        // its discriminant.
        for other in [
            StreamId::Queries { index: 3 },
            StreamId::Sleep { index: 3 },
            StreamId::Hotspot { index: 3 },
            StreamId::Faults { index: 3 },
            StreamId::Mobility { index: 3 },
            StreamId::Custom { tag: 3 },
            StreamId::Custom { tag: 10 },
        ] {
            let mut a = seed.stream(StreamId::QueryPlan { index: 3 });
            let mut b = seed.stream(other);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0, "QueryPlan stream collided with {other:?}");
        }
    }

    #[test]
    fn zipf_query_streams_are_independent_of_existing_streams() {
        let seed = MasterSeed(42);
        // The Zipf item-pick stream for client i must collide with
        // neither the client's other streams nor the tag spaces that
        // could alias its discriminant.
        for other in [
            StreamId::Queries { index: 3 },
            StreamId::Sleep { index: 3 },
            StreamId::Hotspot { index: 3 },
            StreamId::Faults { index: 3 },
            StreamId::Mobility { index: 3 },
            StreamId::QueryPlan { index: 3 },
            StreamId::Custom { tag: 3 },
            StreamId::Custom { tag: 11 },
        ] {
            let mut a = seed.stream(StreamId::ZipfQuery { index: 3 });
            let mut b = seed.stream(other);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0, "ZipfQuery stream collided with {other:?}");
        }
    }

    #[test]
    fn zipf_query_streams_differ_by_index() {
        let seed = MasterSeed(7);
        let mut a = seed.stream(StreamId::ZipfQuery { index: 0 });
        let mut b = seed.stream(StreamId::ZipfQuery { index: 1 });
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn query_plan_streams_differ_by_index() {
        let seed = MasterSeed(7);
        let mut a = seed.stream(StreamId::QueryPlan { index: 0 });
        let mut b = seed.stream(StreamId::QueryPlan { index: 1 });
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mobility_streams_differ_by_index() {
        let seed = MasterSeed(7);
        let mut a = seed.stream(StreamId::Mobility { index: 0 });
        let mut b = seed.stream(StreamId::Mobility { index: 1 });
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fault_streams_differ_by_index() {
        let seed = MasterSeed(7);
        let mut a = seed.stream(StreamId::Faults { index: 0 });
        let mut b = seed.stream(StreamId::Faults { index: 1 });
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = MasterSeed(11).stream(StreamId::Updates);
        let rate = 0.1;
        let n = 200_000;
        let total: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = total / n as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean - expected).abs() / expected < 0.02,
            "sample mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = MasterSeed(13).stream(StreamId::Sleep { index: 0 });
        let p = 0.3;
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - p).abs() < 0.01, "frequency {freq} too far from {p}");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = MasterSeed(1).stream(StreamId::Sleep { index: 0 });
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = MasterSeed(5).stream(StreamId::Hotspot { index: 0 });
        let sample = rng.sample_distinct(1_000_000, 500);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500);
        assert!(sample.iter().all(|&x| x < 1_000_000));
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut rng = MasterSeed(5).stream(StreamId::Hotspot { index: 1 });
        let mut sample = rng.sample_distinct(32, 32);
        sample.sort_unstable();
        assert_eq!(sample, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_index_stays_in_bounds() {
        let mut rng = MasterSeed(3).stream(StreamId::Database);
        for _ in 0..10_000 {
            assert!(rng.uniform_index(17) < 17);
        }
    }
}
