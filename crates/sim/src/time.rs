//! Virtual simulation time.
//!
//! The paper measures everything in seconds: the broadcast latency `L`,
//! the TS window `w = kL`, update timestamps `t_j`, and the client-side
//! "age" variable `T_l` (the timestamp of the last report heard). We model
//! time as a non-negative `f64` wrapped in [`SimTime`], which gives us a
//! total order (NaN is rejected at construction) and explicit, readable
//! interval arithmetic instead of bare floats threaded through the code.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the start of the simulation.
///
/// `SimTime` is totally ordered. Construction rejects NaN and negative
/// values with a panic, because a NaN timestamp anywhere in the event
/// queue would silently corrupt the ordering of the whole simulation.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of virtual time, in seconds. Unlike [`SimTime`], a duration is
/// allowed to be zero but never negative or NaN.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of the simulation clock (`t = 0`).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point at `seconds` since the origin.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    #[inline]
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since the origin as a raw `f64`.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The (non-negative) duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; elapsed time cannot be
    /// negative, and callers that could race should compare first.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "duration_since: {earlier:?} is later than {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Returns the index of the broadcast interval containing this time,
    /// for reports broadcast at `T_i = i·L`. A time exactly on a report
    /// boundary belongs to the interval it *starts*.
    #[inline]
    pub fn interval_index(self, latency: SimDuration) -> u64 {
        assert!(latency.0 > 0.0, "interval latency must be positive");
        (self.0 / latency.0).floor() as u64
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `seconds`.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    #[inline]
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimDuration must be finite and non-negative, got {seconds}"
        );
        SimDuration(seconds)
    }

    /// Length in seconds as a raw `f64`.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration scaled by a non-negative factor (e.g. `w = k·L`).
    #[inline]
    pub fn scaled(self, factor: f64) -> Self {
        SimDuration::from_secs(self.0 * factor)
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees non-NaN, so partial_cmp cannot fail.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!((t - SimTime::from_secs(10.0)).as_secs(), 5.0);
    }

    #[test]
    fn interval_index_matches_report_schedule() {
        let latency = SimDuration::from_secs(10.0);
        assert_eq!(SimTime::from_secs(0.0).interval_index(latency), 0);
        assert_eq!(SimTime::from_secs(9.999).interval_index(latency), 0);
        assert_eq!(SimTime::from_secs(10.0).interval_index(latency), 1);
        assert_eq!(SimTime::from_secs(25.0).interval_index(latency), 2);
    }

    #[test]
    fn saturating_difference_clamps() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a).as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn negative_duration_rejected() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn duration_scaling_builds_window() {
        // w = k·L with k = 100, L = 10 s, as in Scenario 1.
        let l = SimDuration::from_secs(10.0);
        assert_eq!(l.scaled(100.0).as_secs(), 1000.0);
    }
}
