//! The stochastic processes of the paper's model (§4).
//!
//! * Queries at a mobile unit arrive at rate λ per hotspot item, with
//!   exponential inter-arrival times — a Poisson process
//!   ([`PoissonProcess`]).
//! * Updates at the server occur at rate μ per item, also exponential.
//! * Sleep is modeled per broadcast interval: in each interval a unit is
//!   disconnected with probability `s` independently of history
//!   ([`BernoulliIntervalProcess`]); the paper states this independence
//!   assumption explicitly.
//! * [`IntervalClock`] enumerates the report broadcast times `T_i = i·L`.

use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// A Poisson arrival process with exponential inter-arrival times.
///
/// Maintains its own "next arrival" cursor so callers can lazily pull
/// arrivals interval by interval without generating the whole horizon up
/// front — essential when simulating 10^6-item databases where most items
/// see no event in a given interval.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    next: SimTime,
}

impl PoissonProcess {
    /// Creates a process with arrival `rate` (events per second), drawing
    /// the first arrival from `rng` starting at time zero.
    ///
    /// A `rate` of zero yields a process that never fires.
    pub fn new(rate: f64, rng: &mut RngStream) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "Poisson rate must be non-negative, got {rate}"
        );
        let mut p = PoissonProcess {
            rate,
            next: SimTime::ZERO,
        };
        p.advance(rng, SimTime::ZERO);
        p
    }

    /// The arrival rate in events per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Time of the next pending arrival, or `None` for a zero-rate
    /// process.
    pub fn peek(&self) -> Option<SimTime> {
        (self.rate > 0.0).then_some(self.next)
    }

    /// Pops the next arrival if it happens at or before `horizon`,
    /// scheduling the one after it.
    pub fn next_before(&mut self, horizon: SimTime, rng: &mut RngStream) -> Option<SimTime> {
        if self.rate <= 0.0 || self.next > horizon {
            return None;
        }
        let fired = self.next;
        self.advance(rng, fired);
        Some(fired)
    }

    /// Draws every arrival in the half-open window `(from, to]`.
    ///
    /// The window convention matches the paper's report definitions,
    /// which use half-open windows such as `T_{i-1} < t_j ≤ T_i` (AT,
    /// Eq. 2).
    pub fn arrivals_in(
        &mut self,
        from: SimTime,
        to: SimTime,
        rng: &mut RngStream,
    ) -> Vec<SimTime> {
        assert!(to >= from, "window end precedes start");
        let mut out = Vec::new();
        if self.rate <= 0.0 {
            return out;
        }
        // Skip any stale arrivals at or before `from` (can happen if the
        // caller jumps forward, e.g. a client that slept through
        // intervals and does not care about arrivals while asleep).
        while self.next <= from {
            let at = self.next;
            self.advance(rng, at);
        }
        while self.next <= to {
            out.push(self.next);
            let at = self.next;
            self.advance(rng, at);
        }
        out
    }

    /// Number of arrivals in `(from, to]`, without materializing the
    /// timestamps.
    pub fn count_in(&mut self, from: SimTime, to: SimTime, rng: &mut RngStream) -> u64 {
        self.arrivals_in(from, to, rng).len() as u64
    }

    fn advance(&mut self, rng: &mut RngStream, after: SimTime) {
        if self.rate > 0.0 {
            self.next = after + SimDuration::from_secs(rng.exponential(self.rate));
        }
    }
}

/// The per-interval sleep process: in every broadcast interval the unit
/// is disconnected ("asleep") with probability `s`, independently.
///
/// The paper's simplifying assumption (§4): "in each interval, an MU has
/// a probability s of being disconnected, and 1 − s of being connected
/// ... the behavior of the MU in each interval is independent of the
/// behavior of the previous interval."
#[derive(Debug, Clone)]
pub struct BernoulliIntervalProcess {
    sleep_probability: f64,
}

impl BernoulliIntervalProcess {
    /// Creates the process with disconnection probability `s ∈ [0, 1]`.
    pub fn new(sleep_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sleep_probability),
            "sleep probability must be in [0,1], got {sleep_probability}"
        );
        BernoulliIntervalProcess { sleep_probability }
    }

    /// The disconnection probability `s`.
    pub fn sleep_probability(&self) -> f64 {
        self.sleep_probability
    }

    /// Draws whether the unit sleeps through the next interval.
    pub fn draw_asleep(&self, rng: &mut RngStream) -> bool {
        rng.bernoulli(self.sleep_probability)
    }

    /// Draws a whole *sleep run*: the number `k ≥ 0` of consecutive
    /// asleep intervals before the next awake one, distributed
    /// `P(K = k) = s^k · (1 − s)` — exactly the run length that `k + 1`
    /// successive [`Self::draw_asleep`] calls would produce, but in one
    /// draw. This is what lets the cell driver schedule each unit's next
    /// wake-up on a heap instead of flipping a coin for every sleeper
    /// every interval.
    ///
    /// Returns [`u64::MAX`] as an effectively-infinite sentinel when
    /// `s = 1` (the unit never wakes).
    pub fn draw_sleep_run(&self, rng: &mut RngStream) -> u64 {
        let s = self.sleep_probability;
        if s <= 0.0 {
            return 0;
        }
        if s >= 1.0 {
            return u64::MAX;
        }
        // Inverse-CDF of the geometric: k = ⌊ln U / ln s⌋, U ∈ (0, 1).
        let u = rng.uniform().max(f64::MIN_POSITIVE);
        let k = (u.ln() / s.ln()).floor();
        if k >= u64::MAX as f64 {
            u64::MAX
        } else {
            k as u64
        }
    }
}

/// Enumerates report broadcast instants `T_i = i·L` and the intervals
/// between them.
#[derive(Debug, Clone)]
pub struct IntervalClock {
    latency: SimDuration,
    index: u64,
}

impl IntervalClock {
    /// Creates a clock with broadcast latency `L`.
    pub fn new(latency: SimDuration) -> Self {
        assert!(!latency.is_zero(), "broadcast latency L must be positive");
        IntervalClock { latency, index: 0 }
    }

    /// The broadcast latency `L`.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Index `i` of the *next* report to broadcast.
    pub fn next_index(&self) -> u64 {
        self.index
    }

    /// Time of the `i`-th report, `T_i = i·L`.
    pub fn report_time(&self, i: u64) -> SimTime {
        SimTime::from_secs(self.latency.as_secs() * i as f64)
    }

    /// Advances to the next report, returning `(i, T_i)` where interval
    /// `i` is the one that *ends* at `T_i` (i.e. `(T_{i-1}, T_i]`).
    ///
    /// The first call returns `(1, L)`: the report with timestamp `T_1`
    /// covering interval `(T_0, T_1]`. `T_0 = 0` is the conventional time
    /// origin (caches cannot predate it).
    pub fn tick(&mut self) -> (u64, SimTime) {
        self.index += 1;
        (self.index, self.report_time(self.index))
    }

    /// The window `(T_{i-1}, T_i]` covered by report `i`.
    pub fn interval_window(&self, i: u64) -> (SimTime, SimTime) {
        assert!(i >= 1, "interval 0 has no predecessor");
        (self.report_time(i - 1), self.report_time(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{MasterSeed, StreamId};

    fn rng() -> RngStream {
        MasterSeed::TEST.stream(StreamId::Custom { tag: 99 })
    }

    #[test]
    fn poisson_count_matches_rate() {
        let mut r = rng();
        let mut p = PoissonProcess::new(0.5, &mut r);
        let horizon = SimTime::from_secs(100_000.0);
        let n = p.count_in(SimTime::ZERO, horizon, &mut r);
        let expected = 0.5 * 100_000.0;
        assert!(
            (n as f64 - expected).abs() / expected < 0.02,
            "count {n} far from {expected}"
        );
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut r = rng();
        let mut p = PoissonProcess::new(0.0, &mut r);
        assert_eq!(p.peek(), None);
        assert!(p
            .arrivals_in(SimTime::ZERO, SimTime::from_secs(1e9), &mut r)
            .is_empty());
    }

    #[test]
    fn arrivals_are_strictly_inside_window() {
        let mut r = rng();
        let mut p = PoissonProcess::new(2.0, &mut r);
        let from = SimTime::from_secs(10.0);
        let to = SimTime::from_secs(20.0);
        for t in p.arrivals_in(from, to, &mut r) {
            assert!(t > from && t <= to, "arrival {t:?} outside ({from:?}, {to:?}]");
        }
    }

    #[test]
    fn arrivals_are_sorted() {
        let mut r = rng();
        let mut p = PoissonProcess::new(5.0, &mut r);
        let ts = p.arrivals_in(SimTime::ZERO, SimTime::from_secs(100.0), &mut r);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn consecutive_windows_partition_arrivals() {
        // Drawing (0,50] then (50,100] must never yield an arrival ≤ 50
        // in the second call.
        let mut r = rng();
        let mut p = PoissonProcess::new(1.0, &mut r);
        let mid = SimTime::from_secs(50.0);
        let _first = p.arrivals_in(SimTime::ZERO, mid, &mut r);
        let second = p.arrivals_in(mid, SimTime::from_secs(100.0), &mut r);
        assert!(second.iter().all(|&t| t > mid));
    }

    #[test]
    fn no_queries_probability_matches_eq3() {
        // Eq. 3: Prob[no queries in an interval | awake] = e^{-λL}.
        let mut r = rng();
        let lambda = 0.1;
        let l = 10.0;
        let mut p = PoissonProcess::new(lambda, &mut r);
        let mut empty = 0u64;
        let trials = 50_000u64;
        for i in 0..trials {
            let from = SimTime::from_secs(i as f64 * l);
            let to = SimTime::from_secs((i + 1) as f64 * l);
            if p.count_in(from, to, &mut r) == 0 {
                empty += 1;
            }
        }
        let freq = empty as f64 / trials as f64;
        let expected = (-lambda * l).exp();
        assert!(
            (freq - expected).abs() < 0.01,
            "P[no queries] {freq} vs e^-λL {expected}"
        );
    }

    #[test]
    fn interval_clock_enumerates_ti() {
        let mut c = IntervalClock::new(SimDuration::from_secs(10.0));
        assert_eq!(c.tick(), (1, SimTime::from_secs(10.0)));
        assert_eq!(c.tick(), (2, SimTime::from_secs(20.0)));
        let (lo, hi) = c.interval_window(2);
        assert_eq!(lo, SimTime::from_secs(10.0));
        assert_eq!(hi, SimTime::from_secs(20.0));
    }

    #[test]
    fn sleep_process_frequency() {
        let mut r = rng();
        let p = BernoulliIntervalProcess::new(0.7);
        let n = 100_000;
        let asleep = (0..n).filter(|_| p.draw_asleep(&mut r)).count();
        let freq = asleep as f64 / n as f64;
        assert!((freq - 0.7).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sleep probability")]
    fn sleep_probability_validated() {
        let _ = BernoulliIntervalProcess::new(1.5);
    }

    #[test]
    fn sleep_run_matches_geometric() {
        let mut r = rng();
        let s = 0.7;
        let p = BernoulliIntervalProcess::new(s);
        let n = 100_000;
        let mut sum = 0u64;
        let mut zeros = 0u64;
        for _ in 0..n {
            let k = p.draw_sleep_run(&mut r);
            sum += k;
            zeros += (k == 0) as u64;
        }
        // E[K] = s/(1−s), P[K = 0] = 1 − s.
        let mean = sum as f64 / n as f64;
        assert!((mean - s / (1.0 - s)).abs() < 0.05, "mean {mean}");
        let p0 = zeros as f64 / n as f64;
        assert!((p0 - (1.0 - s)).abs() < 0.01, "P[K=0] {p0}");
    }

    #[test]
    fn sleep_run_edge_probabilities() {
        let mut r = rng();
        assert_eq!(BernoulliIntervalProcess::new(0.0).draw_sleep_run(&mut r), 0);
        assert_eq!(
            BernoulliIntervalProcess::new(1.0).draw_sleep_run(&mut r),
            u64::MAX
        );
    }
}
