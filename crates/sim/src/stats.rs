//! Streaming statistics for the metrics layer.
//!
//! Simulation runs span millions of query events; we never store raw
//! samples. [`Welford`] keeps numerically stable running mean/variance,
//! [`RatioEstimator`] tracks hit ratios (hits over trials with a normal
//! confidence interval), [`Counter`] is a plain named tally, and
//! [`Histogram`] buckets values for distribution sanity checks.

use std::fmt;

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel sweeps).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Hits over trials — the estimator behind every hit-ratio measurement.
#[derive(Debug, Clone, Copy, Default)]
pub struct RatioEstimator {
    hits: u64,
    trials: u64,
}

impl RatioEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial with the given outcome.
    pub fn record(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Records `hits` successes out of `trials` in bulk.
    pub fn record_bulk(&mut self, hits: u64, trials: u64) {
        assert!(hits <= trials, "more hits than trials");
        self.hits += hits;
        self.trials += trials;
    }

    /// Number of successes.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `hits / trials`, or 0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Half-width of the 95% normal-approximation confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.ratio();
        1.96 * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Merges another estimator into this one.
    pub fn merge(&mut self, other: &RatioEstimator) {
        self.hits += other.hits;
        self.trials += other.trials;
    }
}

impl fmt::Display for RatioEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ±{:.4} (n={})",
            self.ratio(),
            self.ci95_half_width(),
            self.trials
        )
    }
}

/// A plain monotone counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A fixed-range, fixed-bucket histogram with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal bins.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per in-range bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q ∈ [0,1]`) from bucket midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return self.lo;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..1000 {
            let x = (i as f64).sin() * 10.0 + 3.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn ratio_estimator_basics() {
        let mut r = RatioEstimator::new();
        for i in 0..100 {
            r.record(i % 4 == 0);
        }
        assert_eq!(r.hits(), 25);
        assert_eq!(r.trials(), 100);
        assert!((r.ratio() - 0.25).abs() < 1e-12);
        assert!(r.ci95_half_width() > 0.0);
    }

    #[test]
    fn ratio_estimator_merge() {
        let mut a = RatioEstimator::new();
        a.record_bulk(10, 40);
        let mut b = RatioEstimator::new();
        b.record_bulk(30, 60);
        a.merge(&b);
        assert_eq!(a.hits(), 40);
        assert_eq!(a.trials(), 100);
    }

    #[test]
    #[should_panic(expected = "more hits")]
    fn ratio_estimator_rejects_impossible_bulk() {
        let mut r = RatioEstimator::new();
        r.record_bulk(5, 3);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.buckets().iter().all(|&b| b == 1));
    }

    #[test]
    fn histogram_median_of_uniform() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.record(i as f64 / 10_000.0);
        }
        let med = h.quantile(0.5);
        assert!((med - 0.5).abs() < 0.02, "median {med}");
    }
}
