//! Deterministic event queue.
//!
//! The cell simulation is mostly interval-synchronous (everything hinges
//! on the report broadcast at `T_i = i·L`), but *within* an interval the
//! update stream, each client's query stream, and uplink request
//! completions interleave at arbitrary times. The queue orders events by
//! [`SimTime`] with a monotone sequence number breaking ties, so two runs
//! with the same seed replay identically regardless of insertion order of
//! equal-time events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event of payload type `E` scheduled at a point in virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Stable tie-breaker: events scheduled earlier fire earlier when
    /// their timestamps are exactly equal.
    pub seq: u64,
    /// The event payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of events with deterministic tie-breaking.
///
/// Popping never goes backwards in time: the queue tracks the timestamp
/// of the last popped event and panics if an event is scheduled in the
/// past, which catches causality bugs at their source rather than letting
/// them surface as subtly wrong statistics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time: the timestamp of the last popped event,
    /// or `t = 0` if nothing has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current virtual time.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at:?}, clock already at {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest pending event, advancing the virtual clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    /// Used by the interval driver to drain exactly one broadcast interval.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? <= horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Discards all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7.5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(9.0), 2);
        q.schedule(SimTime::from_secs(11.0), 3);
        let horizon = SimTime::from_secs(10.0);
        let mut drained = Vec::new();
        while let Some(e) = q.pop_until(horizon) {
            drained.push(e.payload);
        }
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn event_at_exact_horizon_is_included() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), 1);
        assert!(q.pop_until(SimTime::from_secs(10.0)).is_some());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
