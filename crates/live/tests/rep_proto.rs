//! Damage-resistance suite for the replication and failover control
//! messages, mirroring the wire-codec properties pinned in
//! `sw-wireless`'s `wire_roundtrip` suite:
//!
//! 1. `read_from ∘ write_to ≡ id` for every sealed variant, across
//!    seeded-random and extreme field values;
//! 2. truncating the encoded stream at *every* byte boundary is a
//!    clean error, never a panic;
//! 3. any single-bit flip anywhere in the encoding (length prefix
//!    included) is rejected — the `checksum64` trailer covers tag and
//!    payload, and the sealed tag values are chosen so no flip lands
//!    on a length-promiscuous legacy tag that would swallow the
//!    damaged body as a valid message.
//!
//! The legacy client messages (`Hello`, `Query`, …) ride inside frames
//! that carry their own datagram checksum; these control messages walk
//! the replication TCP links naked, so the trailer here is the only
//! integrity guard between a flaky peer link and a forged takeover.

use std::io::Cursor;
use std::net::SocketAddr;

use sw_live::Msg;
use sw_sim::{MasterSeed, RngStream, StreamId};

fn addr4(rng: &mut RngStream) -> SocketAddr {
    let ip = [
        rng.next_u64() as u8,
        rng.next_u64() as u8,
        rng.next_u64() as u8,
        rng.next_u64() as u8,
    ];
    SocketAddr::from((ip, rng.next_u64() as u16))
}

fn addr6(rng: &mut RngStream) -> SocketAddr {
    let mut seg = [0u16; 8];
    for s in &mut seg {
        *s = rng.next_u64() as u16;
    }
    SocketAddr::from((seg, rng.next_u64() as u16))
}

/// A seeded-random instance of every sealed control variant.
fn arbitrary_sealed(rng: &mut RngStream) -> Vec<Msg> {
    let n_peers = (rng.next_u64() % 5) as usize;
    let peers: Vec<SocketAddr> = (0..n_peers)
        .map(|_| {
            if rng.next_u64().is_multiple_of(2) {
                addr4(rng)
            } else {
                addr6(rng)
            }
        })
        .collect();
    let n_pub = (rng.next_u64() % 6) as usize;
    let publishes: Vec<(u64, u64)> = (0..n_pub)
        .map(|_| (rng.next_u64(), rng.next_u64()))
        .collect();
    vec![
        Msg::Successors { peers },
        Msg::Standby {
            epoch: rng.next_u64(),
        },
        Msg::RepHello {
            node: rng.next_u64() as u32,
            epoch: rng.next_u64(),
            last_applied: rng.next_u64(),
        },
        Msg::RepAppend {
            epoch: rng.next_u64(),
            interval: rng.next_u64(),
            publishes,
        },
        Msg::RepAck {
            epoch: rng.next_u64(),
            interval: rng.next_u64(),
        },
        Msg::RepPromote {
            epoch: rng.next_u64(),
            resume_at: rng.next_u64(),
        },
    ]
}

/// Extreme field values for every sealed variant.
fn extreme_sealed() -> Vec<Msg> {
    vec![
        Msg::Successors { peers: vec![] },
        Msg::Successors {
            peers: vec![
                "0.0.0.0:0".parse().unwrap(),
                "255.255.255.255:65535".parse().unwrap(),
                "[ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff]:65535"
                    .parse()
                    .unwrap(),
                "[::]:0".parse().unwrap(),
            ],
        },
        Msg::Standby { epoch: 0 },
        Msg::Standby { epoch: u64::MAX },
        Msg::RepHello {
            node: u32::MAX,
            epoch: u64::MAX,
            last_applied: u64::MAX,
        },
        Msg::RepHello {
            node: 0,
            epoch: 0,
            last_applied: 0,
        },
        Msg::RepAppend {
            epoch: u64::MAX,
            interval: u64::MAX,
            publishes: vec![(u64::MAX, u64::MAX), (0, 0)],
        },
        Msg::RepAppend {
            epoch: 1,
            interval: 1,
            publishes: vec![],
        },
        Msg::RepAck {
            epoch: u64::MAX,
            interval: 0,
        },
        Msg::RepPromote {
            epoch: u64::MAX,
            resume_at: u64::MAX,
        },
    ]
}

fn encode(m: &Msg) -> Vec<u8> {
    let mut buf = Vec::new();
    m.write_to(&mut buf).expect("encode to a Vec");
    buf
}

fn decode(bytes: &[u8]) -> std::io::Result<Msg> {
    Msg::read_from(&mut Cursor::new(bytes))
}

#[test]
fn sealed_messages_round_trip_over_random_values() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x4E70 });
    for _ in 0..300 {
        for m in arbitrary_sealed(&mut rng) {
            let back = decode(&encode(&m)).unwrap_or_else(|e| panic!("{m:?} failed: {e}"));
            assert_eq!(back, m, "message mutated in flight");
        }
    }
}

#[test]
fn sealed_messages_round_trip_at_extremes() {
    for m in extreme_sealed() {
        let back = decode(&encode(&m)).unwrap_or_else(|e| panic!("{m:?} failed: {e}"));
        assert_eq!(back, m);
    }
}

/// Every proper prefix of an encoded message must fail cleanly —
/// a peer hanging up mid-write is an error, never a partial message.
#[test]
fn truncation_at_every_byte_is_rejected() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x4E71 });
    let mut msgs = extreme_sealed();
    msgs.extend(arbitrary_sealed(&mut rng));
    for m in msgs {
        let bytes = encode(&m);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "{}-byte prefix of a {}-byte {m:?} decoded",
                cut,
                bytes.len()
            );
        }
    }
}

/// Any single-bit flip anywhere in the encoding — length prefix, tag,
/// payload, or trailer — must be rejected. A flip can never produce a
/// *different valid* control message; a forged epoch or takeover
/// announcement would corrupt the whole cluster's log.
#[test]
fn every_single_bit_flip_is_rejected() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x4E72 });
    let mut msgs = extreme_sealed();
    msgs.extend(arbitrary_sealed(&mut rng));
    for m in msgs {
        let bytes = encode(&m);
        for bit in 0..bytes.len() * 8 {
            let mut damaged = bytes.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode(&damaged).is_err(),
                "bit {bit} of {m:?} slipped through as {:?}",
                decode(&damaged)
            );
        }
    }
}

/// Arbitrary garbage streams: the reader is total.
#[test]
fn random_garbage_never_panics() {
    let mut rng = MasterSeed::TEST.stream(StreamId::Custom { tag: 0x4E73 });
    for _ in 0..2_000 {
        let len = (rng.next_u64() % 96) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode(&buf);
    }
}
