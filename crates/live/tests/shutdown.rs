//! Shutdown coverage: a paced session stopped mid-run ends *cleanly*
//! — a well-formed partial [`LiveServerReport`], a flight ring that
//! still renders, and every client riding the `Halt` home instead of
//! erroring out. This is the library half of the SIGTERM story; the
//! `sw-serve` binary's signal handler is exercised end-to-end in the
//! `sw-experiments` test suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sleepers::{CellConfig, Strategy};
use sw_live::{run_mu, LiveOptions, LiveServer, MuOptions};
use sw_workload::ScenarioParams;

const CLIENTS: usize = 3;
const INTERVALS: u64 = 60;
const INTERVAL_MS: u64 = 20;

fn cell(seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(0.3);
    params.n_items = 150;
    params.mu = 4e-3;
    params.k = 8;
    CellConfig::new(params)
        .with_clients(CLIENTS)
        .with_hotspot_size(12)
        .with_seed(seed)
}

/// A `Stopper` fired mid-interval must land the session like a SIGTERM
/// does in `sw-serve`: partial report, clean `Halt` to every client,
/// flight ring intact.
#[test]
fn stopper_mid_paced_session_yields_partial_report_and_flight_dump() {
    let cfg = cell(0x5167_7E21);
    let opts = LiveOptions::paced(INTERVALS, INTERVAL_MS).with_flight_capacity(16);
    let handle = LiveServer::spawn(cfg.clone(), Strategy::BroadcastTimestamps, opts)
        .expect("spawn server");
    let addr = handle.addr();
    let stopper = handle.stopper();

    let heard = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            thread::spawn(move || {
                run_mu(
                    addr,
                    &cfg,
                    Strategy::BroadcastTimestamps,
                    idx,
                    MuOptions::default(),
                )
            })
        })
        .collect();

    // Let a handful of reports air, then pull the plug mid-interval.
    let armed = Instant::now() + Duration::from_millis(8 * INTERVAL_MS);
    while Instant::now() < armed {
        thread::sleep(Duration::from_millis(5));
    }
    stopper.stop();

    let report = handle.wait().expect("a stopped session still reports");
    assert!(report.intervals > 0, "stop landed before the first report");
    assert!(
        report.intervals < INTERVALS,
        "stop never took effect ({} intervals ran)",
        report.intervals
    );
    assert!(report.datagrams_sent > 0);

    // The flight ring rides the report out, exactly what `sw-serve`
    // dumps on SIGTERM: a `flight_meta` line first, entries after.
    let dump = report
        .flight
        .to_ndjson(&format!("sigterm after {} intervals", report.intervals));
    let meta = dump.lines().next().expect("flight meta line");
    assert!(meta.contains("\"kind\":\"flight_meta\""), "bad meta: {meta}");
    assert!(meta.contains("\"reason\":\"sigterm"), "bad meta: {meta}");
    assert!(
        dump.lines().count() > 1,
        "the ring held no entries despite broadcast traffic"
    );

    // Every client must come home cleanly. A unit is *autonomous* — a
    // dead broadcaster does not stop its local schedule; it either
    // catches the `Halt` on an uplink exchange (ends early) or rides
    // out the remaining intervals as ordinary misses.
    for w in workers {
        let mu = w
            .join()
            .expect("client thread")
            .expect("client rode the shutdown cleanly");
        let ran = mu.rows.len() as u64;
        assert!(
            (report.intervals..=INTERVALS).contains(&ran),
            "client ran {ran} of {INTERVALS} intervals, server stopped at {}",
            report.intervals
        );
        heard.fetch_add(mu.reports_heard, Ordering::Relaxed);
    }
    assert!(heard.load(Ordering::Relaxed) > 0, "no report was ever heard");
}

/// A stop that lands before the fleet finishes registering must not
/// hang the teardown — the accept loop and every client drop out.
#[test]
fn stopper_before_registration_completes_is_clean() {
    let cfg = cell(0x51);
    // n_clients is CLIENTS but nobody connects: the ticker sits in the
    // registration wait until the stop arrives.
    let opts = LiveOptions::paced(INTERVALS, INTERVAL_MS);
    let handle =
        LiveServer::spawn(cfg, Strategy::AmnesicTerminals, opts).expect("spawn server");
    let stopper = handle.stopper();
    thread::sleep(Duration::from_millis(30));
    stopper.stop();
    let err = match handle.wait() {
        Ok(_) => panic!("an unregistered session cannot produce a report"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("stopped"),
        "unexpected teardown error: {err}"
    );
}
