//! The acceptance gate: same seed + same update schedule ⇒
//! byte-identical per-client decision logs between `CellSimulation`
//! and the live stack, for TS, AT, and SIG (plus the hybrid report,
//! and — with the `faults` feature — under injected downlink loss and
//! corruption against real datagram bytes).

use sleepers::{CellConfig, Strategy};
use sw_live::check_conformance;
use sw_workload::ScenarioParams;

/// A fleet small enough that the simulated channel never saturates
/// (saturation would defer answers the live TCP uplink delivers
/// immediately — `check_conformance` rejects such runs instead of
/// comparing them).
fn small_cell(s: f64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(s);
    params.n_items = 300;
    params.mu = 2e-3;
    params.k = 10;
    CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15)
        .with_seed(0x11FE_C0DE)
}

fn assert_conforms(cfg: &CellConfig, strategy: Strategy, intervals: u64) {
    let outcome = check_conformance(cfg, strategy, intervals)
        .unwrap_or_else(|e| panic!("{} conformance failed: {e}", strategy.name()));
    // The harness already compared the encodings; sanity-check the
    // logs are non-trivial (somebody was awake and decided something).
    let decided: u64 = outcome
        .sim
        .iter()
        .flatten()
        .map(|r| r.queries + r.hits + r.misses)
        .sum();
    assert!(decided > 0, "a trivial log conforms vacuously");
}

#[test]
fn ts_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.4), Strategy::BroadcastTimestamps, 48);
}

#[test]
fn at_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.6), Strategy::AmnesicTerminals, 48);
}

#[test]
fn sig_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.4), Strategy::Signatures, 32);
}

#[test]
fn hybrid_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.5), Strategy::HybridSig { hot_count: 40 }, 32);
}

/// Sleep-heavy fleets exercise the gap-recovery paths (TS window
/// overruns, AT whole-cache drops) rather than the steady state.
#[test]
fn sleeper_heavy_ts_and_at_conform() {
    let cfg = small_cell(0.9);
    assert_conforms(&cfg, Strategy::BroadcastTimestamps, 40);
    assert_conforms(&cfg, Strategy::AmnesicTerminals, 40);
}

/// With fault injection compiled in, the live client draws the same
/// per-client loss/corruption fates the simulator draws — corruption
/// flipping a bit of the *received datagram's* frame bytes — and the
/// decision logs must still match row for row.
#[cfg(feature = "faults")]
#[test]
fn faulty_downlink_decision_logs_are_byte_identical() {
    use sleepers::faults::compiled_in;
    use sw_faults::{FaultPlan, LossModel};
    assert!(compiled_in());
    let plan = FaultPlan::none()
        .with_loss(LossModel::bernoulli(0.15))
        .with_corruption(0.10);
    let cfg = small_cell(0.4).with_faults(plan);
    assert_conforms(&cfg, Strategy::BroadcastTimestamps, 40);
    assert_conforms(&cfg, Strategy::AmnesicTerminals, 40);
    assert_conforms(&cfg, Strategy::Signatures, 28);
}
