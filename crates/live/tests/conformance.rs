//! The acceptance gate: same seed + same update schedule ⇒
//! byte-identical per-client decision logs between `CellSimulation`
//! and the live stack, for TS, AT, and SIG (plus the hybrid report,
//! and — with the `faults` feature — under injected downlink loss and
//! corruption against real datagram bytes).

use sleepers::{CellConfig, Strategy};
use sw_live::check_conformance;
use sw_workload::ScenarioParams;

/// A fleet small enough that the simulated channel never saturates
/// (saturation would defer answers the live TCP uplink delivers
/// immediately — `check_conformance` rejects such runs instead of
/// comparing them).
fn small_cell(s: f64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(s);
    params.n_items = 300;
    params.mu = 2e-3;
    params.k = 10;
    CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15)
        .with_seed(0x11FE_C0DE)
}

fn assert_conforms(cfg: &CellConfig, strategy: Strategy, intervals: u64) {
    let outcome = check_conformance(cfg, strategy, intervals)
        .unwrap_or_else(|e| panic!("{} conformance failed: {e}", strategy.name()));
    // The harness already compared the encodings; sanity-check the
    // logs are non-trivial (somebody was awake and decided something).
    let decided: u64 = outcome
        .sim
        .iter()
        .flatten()
        .map(|r| r.queries + r.hits + r.misses)
        .sum();
    assert!(decided > 0, "a trivial log conforms vacuously");
}

#[test]
fn ts_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.4), Strategy::BroadcastTimestamps, 48);
}

#[test]
fn at_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.6), Strategy::AmnesicTerminals, 48);
}

#[test]
fn sig_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.4), Strategy::Signatures, 32);
}

#[test]
fn hybrid_decision_logs_are_byte_identical() {
    assert_conforms(&small_cell(0.5), Strategy::HybridSig { hot_count: 40 }, 32);
}

/// Sleep-heavy fleets exercise the gap-recovery paths (TS window
/// overruns, AT whole-cache drops) rather than the steady state.
#[test]
fn sleeper_heavy_ts_and_at_conform() {
    let cfg = small_cell(0.9);
    assert_conforms(&cfg, Strategy::BroadcastTimestamps, 40);
    assert_conforms(&cfg, Strategy::AmnesicTerminals, 40);
}

/// The query-plane gate: arming result caching on both sides keeps the
/// widened decision rows — query hit/miss verdicts and transaction
/// commit/abort outcomes included — byte-identical for every static
/// strategy the daemon serves.
#[test]
fn query_armed_decision_logs_are_byte_identical() {
    let qc = sleepers::query::QueryPlaneConfig::new();
    let outcome = check_conformance(
        &small_cell(0.4).with_query(qc),
        Strategy::BroadcastTimestamps,
        48,
    )
    .expect("TS query conformance");
    let resolved: u64 = outcome
        .sim
        .iter()
        .flatten()
        .map(|r| r.qhits + r.qmisses)
        .sum();
    assert!(resolved > 0, "the query plane never resolved a query");
    let txns: u64 = outcome
        .sim
        .iter()
        .flatten()
        .map(|r| r.qcommits + r.qaborts)
        .sum();
    assert!(txns > 0, "no transactional read ever finished");
    assert_conforms(
        &small_cell(0.6).with_query(qc),
        Strategy::AmnesicTerminals,
        40,
    );
    assert_conforms(&small_cell(0.4).with_query(qc), Strategy::Signatures, 28);
}

/// The bounded-cache gate: with finite capacity armed on both sides,
/// the widened decision rows — eviction and capacity-miss counters
/// included — stay byte-identical for every replacement policy. The
/// simulator side hosts the columnar fleet here (bounded caches are
/// columnar-eligible), so this also pins live-vs-columnar equality
/// under eviction pressure.
#[test]
fn bounded_cache_decision_logs_are_byte_identical() {
    use sleepers::capacity::ReplacementPolicy;

    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::WindowAge,
    ] {
        let cfg = small_cell(0.4)
            .with_cache_capacity(6)
            .with_replacement(policy);
        let outcome = check_conformance(&cfg, Strategy::BroadcastTimestamps, 40)
            .unwrap_or_else(|e| panic!("{policy:?} bounded conformance failed: {e}"));
        let evicted: u64 = outcome.sim.iter().flatten().map(|r| r.evictions).sum();
        assert!(evicted > 0, "{policy:?}: capacity 6 under a 15-item hotspot must evict");
    }
    assert_conforms(
        &small_cell(0.6).with_cache_capacity(6),
        Strategy::AmnesicTerminals,
        40,
    );
}

/// The `ServerDriver` extraction makes the feedback strategies
/// live-eligible: Method-2 adaptive TS (per-item windows steered by
/// uplink deltas the daemon already sees) and delay-condition quasi
/// caching now run on the daemon, and their decision logs — query
/// verdicts included — still match the simulator byte for byte.
#[test]
fn adaptive_and_quasi_go_live_and_conform() {
    use sleepers::adaptive::FeedbackMethod;

    let qc = sleepers::query::QueryPlaneConfig::new();
    assert_conforms(
        &small_cell(0.4).with_query(qc),
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method2,
            eval_period: 8,
            step: 2,
        },
        40,
    );
    assert_conforms(
        &small_cell(0.5).with_query(qc),
        Strategy::QuasiDelay { alpha_intervals: 3 },
        40,
    );
}

/// Arming the ops plane must not perturb the session: with the metrics
/// exporter serving `/metrics` — and a scraper hammering it *during*
/// the lockstep run — plus flight recorders on both sides, the live
/// decision log is still byte-identical to the simulator's.
#[test]
fn conformance_holds_with_metrics_exporter_polling() {
    use sw_live::conformance::{live_decision_log_with, sim_decision_log};
    use sw_live::{encode_rows, LiveOptions, MuOptions};

    let cfg = small_cell(0.4);
    let strategy = Strategy::BroadcastTimestamps;
    let intervals = 40;
    let sim = sim_decision_log(&cfg, strategy, intervals).expect("sim reference");

    let opts = LiveOptions::lockstep(intervals)
        .with_metrics(std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
        .with_flight_capacity(16);
    let mu_opts = MuOptions {
        flight_capacity: 8,
        ..MuOptions::default()
    };
    let mut scraper = None;
    let live = live_decision_log_with(&cfg, strategy, opts, mu_opts, |metrics| {
        let addr = metrics.expect("metrics_bind was set");
        scraper = Some(std::thread::spawn(move || {
            let timeout = std::time::Duration::from_secs(2);
            let mut pages = 0u64;
            // Poll until the exporter dies with the session.
            while let Ok(page) = sw_ops::http::get(addr, "/metrics", timeout) {
                assert!(page.contains("sw_interval"), "malformed page: {page}");
                pages += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            pages
        }));
    })
    .expect("live session with exporter armed");

    for (idx, (s_rows, l_rows)) in sim.iter().zip(&live).enumerate() {
        assert_eq!(
            encode_rows(s_rows),
            encode_rows(l_rows),
            "client {idx} diverged under an armed exporter"
        );
    }
    let pages = scraper
        .expect("on_spawn ran")
        .join()
        .expect("scraper thread");
    assert!(pages > 0, "the scraper never got a page mid-run");
}

/// Observation must be a pure read: with the `observe` feature
/// compiled in, an observing session's decision log is byte-identical
/// to the unobserved session's.
#[cfg(feature = "observe")]
#[test]
fn observing_session_decides_identically() {
    use sw_live::encode_rows;

    let strategy = Strategy::BroadcastTimestamps;
    let plain = check_conformance(&small_cell(0.4), strategy, 40).expect("plain run");
    let observed = check_conformance(&small_cell(0.4).with_observe("conf"), strategy, 40)
        .expect("observing run");
    for (idx, (p_rows, o_rows)) in plain.live.iter().zip(&observed.live).enumerate() {
        assert_eq!(
            encode_rows(p_rows),
            encode_rows(o_rows),
            "client {idx}: observation perturbed the decisions"
        );
    }
}

/// With fault injection compiled in, the live client draws the same
/// per-client loss/corruption fates the simulator draws — corruption
/// flipping a bit of the *received datagram's* frame bytes — and the
/// decision logs must still match row for row.
#[cfg(feature = "faults")]
#[test]
fn faulty_downlink_decision_logs_are_byte_identical() {
    use sleepers::faults::compiled_in;
    use sw_faults::{FaultPlan, LossModel};
    assert!(compiled_in());
    let plan = FaultPlan::none()
        .with_loss(LossModel::bernoulli(0.15))
        .with_corruption(0.10);
    let cfg = small_cell(0.4).with_faults(plan);
    assert_conforms(&cfg, Strategy::BroadcastTimestamps, 40);
    assert_conforms(&cfg, Strategy::AmnesicTerminals, 40);
    assert_conforms(&cfg, Strategy::Signatures, 28);
}
