//! The ops plane against a real paced session: a scraper polling
//! `/metrics` and `/healthz` while `sw-serve`'s engine broadcasts,
//! per-MU gauges published to an in-process hub, flight rings on both
//! sides, and the fault-storm dump path driven by a unit that never
//! hears a report.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use sleepers::{CellConfig, Strategy};
use sw_live::{run_mu, LiveOptions, LiveServer, MetricsHub, MuOptions};
use sw_workload::ScenarioParams;

const CLIENTS: usize = 3;

fn cell(s: f64, seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(s);
    params.n_items = 200;
    params.mu = 2e-3;
    params.k = 8;
    CellConfig::new(params)
        .with_clients(CLIENTS)
        .with_hotspot_size(15)
        .with_seed(seed)
}

fn loopback() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

/// Reads gauge `name` (unlabeled sample suffix included) off a
/// Prometheus text page.
fn gauge(page: &str, name: &str) -> Option<f64> {
    page.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(['{', ' ']))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn paced_session_serves_live_metrics_and_flight_ring() {
    let intervals = 30u64;
    // The label is inert without the `observe` feature; with it, the
    // server's recorder counters must show up on the scraped page.
    let cfg = cell(0.4, 0x0B5E_CAFE).with_observe("ops");
    let opts = LiveOptions::paced(intervals, 20)
        .with_metrics(loopback())
        .with_flight_capacity(16);
    let handle = LiveServer::spawn(cfg.clone(), Strategy::BroadcastTimestamps, opts)
        .expect("spawn live server");
    let addr = handle.addr();
    let metrics_addr = handle.metrics_addr().expect("metrics plane armed");

    // MU-side gauges go to an in-process hub; the last published view
    // must reconcile with the unit's own end-of-session report.
    let hub = MetricsHub::new();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            let opts = MuOptions {
                flight_capacity: 8,
                metrics: (idx == 0).then(|| Arc::clone(&hub)),
                ..MuOptions::default()
            };
            thread::spawn(move || run_mu(addr, &cfg, Strategy::BroadcastTimestamps, idx, opts))
        })
        .collect();

    // Scrape until the exporter dies with the session, keeping the
    // last page each endpoint served.
    let scraper = thread::spawn(move || {
        let t = Duration::from_secs(2);
        let mut last_page = String::new();
        let mut pages = 0u64;
        while let Ok(body) = sw_ops::http::get(metrics_addr, "/healthz", t) {
            assert_eq!(body, "ok\n");
            if let Ok(page) = sw_ops::http::get(metrics_addr, "/metrics", t) {
                pages += 1;
                last_page = page;
            }
            thread::sleep(Duration::from_millis(5));
        }
        (pages, last_page)
    });

    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    let server = handle.wait().expect("server session");
    let (pages, last_page) = scraper.join().expect("scraper thread");

    assert!(pages > 0, "no page scraped during a 600 ms session");
    assert!(
        last_page.contains("role=\"server\"") && last_page.contains("strategy=\"TS\""),
        "identity labels missing: {last_page}"
    );
    assert_eq!(
        gauge(&last_page, "sw_mu_registered"),
        Some(CLIENTS as f64),
        "{last_page}"
    );
    // Scraped totals are a prefix of (or equal to) the final report's.
    let scraped_datagrams = gauge(&last_page, "sw_datagrams_sent").expect("gauge present");
    assert!(scraped_datagrams > 0.0);
    assert!(scraped_datagrams <= server.datagrams_sent as f64);
    #[cfg(feature = "observe")]
    assert!(
        last_page.contains("sw_reports_built_total"),
        "observing build: recorder counters belong on the page"
    );

    // The endpoint dies with the session.
    assert!(
        sw_ops::http::get(metrics_addr, "/healthz", Duration::from_millis(300)).is_err(),
        "exporter outlived the session"
    );

    // Server flight ring: one entry per broadcast tick, bounded at 16.
    assert_eq!(server.intervals, intervals);
    assert_eq!(server.flight.len(), 16);
    let kinds: Vec<_> = server.flight.entries().map(|e| e.kind).collect();
    assert!(kinds.iter().all(|&k| k == "report"));
    let dump = server.flight.to_ndjson("session end");
    assert!(dump.contains("\"forgotten\":14"), "{dump}");

    // The hub's final MU view reconciles with that unit's report.
    let mu0 = &reports[0];
    let view = hub.read();
    assert_eq!(view.gauge_value("reports_heard"), Some(mu0.reports_heard as f64));
    assert_eq!(view.gauge_value("reports_missed"), Some(mu0.reports_missed as f64));
    assert!(!mu0.flight.is_empty(), "mu flight ring recorded nothing");
}

/// A unit that never hears a report crosses its storm threshold and
/// dumps its flight ring exactly once, NDJSON with the storm reason.
#[test]
fn rx_drop_storm_dumps_flight_ring() {
    let intervals = 12u64;
    // Workaholic fleet (s = 0): every unit is awake every interval, so
    // the full-drop client misses 12 reports in a row.
    let cfg = cell(0.0, 0x5708_0001);
    let dir = std::env::temp_dir().join(format!("sw-ops-storm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let handle = LiveServer::spawn(
        cfg.clone(),
        Strategy::BroadcastTimestamps,
        LiveOptions::lockstep(intervals),
    )
    .expect("spawn live server");
    let addr = handle.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            let opts = MuOptions {
                // Unit 0 drops every datagram at the receiver; the
                // others keep the session honest.
                rx_drop: if idx == 0 { 1.0 } else { 0.0 },
                flight_capacity: 32,
                storm_threshold: 5,
                flight_dir: Some(dir.clone()),
                ..MuOptions::default()
            };
            thread::spawn(move || run_mu(addr, &cfg, Strategy::BroadcastTimestamps, idx, opts))
        })
        .collect();
    let reports: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    handle.wait().expect("server session");

    assert_eq!(reports[0].reports_missed, intervals, "unit 0 heard something");
    let dump_path = dir.join("sw-flight-mu0.ndjson");
    let body = std::fs::read_to_string(&dump_path).expect("storm dump written");
    let first = body.lines().next().expect("meta line");
    assert!(first.contains("\"kind\":\"flight_meta\""), "{first}");
    assert!(first.contains("fault storm: 5 consecutive missed"), "{first}");
    assert!(body.contains("\"kind\":\"fault_storm\""));
    assert!(body.contains("\"kind\":\"report_missed\""));
    // One dump per session, even though the storm kept raging.
    assert_eq!(
        body.matches("\"kind\":\"fault_storm\"").count(),
        1,
        "the dump fired more than once"
    );
    // Units that heard their reports never dump.
    assert!(!dir.join("sw-flight-mu1.ndjson").exists());
    std::fs::remove_dir_all(&dir).ok();
}
