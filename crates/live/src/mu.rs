//! The live mobile-unit: a real `crates/client` cache behind real
//! sockets.
//!
//! [`LiveMu`] is the transport-free core: it replicates, stream for
//! stream, the per-client construction and per-interval call sequence
//! of `CellSimulation` (hotspot draw, query generation, the strategy's
//! report handler, the sleep-run schedule, and — when armed — the
//! fault layer's per-client fate draws), so that a live unit fed the
//! same seed and the same report bytes makes byte-identical decisions
//! to its simulated twin. That identity is what the conformance
//! harness pins (see [`crate::conformance`]).
//!
//! [`run_mu`] wraps the core in the actual transport: a TCP control
//! connection to `sw-serve` (registration, uplink queries, lockstep
//! barriers) and a UDP socket listening for the periodic invalidation
//! reports. Queries buffer in the unit until the next heard report
//! answers them locally or sends them uplink — the paper's latency
//! rule (§2) — and a missed or corrupt report triggers the strategy's
//! own recovery at the next intact one.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sleepers::safety::ValueHistory;
use sleepers::{CellConfig, Strategy};
use sw_client::handler::{time_from_micros, time_to_micros};
use sw_client::{MobileUnit, MuConfig, MuStats};
use sw_faults::{FaultLayer, ReportFate};
use sw_observe::event::Value;
use sw_observe::{ObserveSnapshot, Recorder};
use sw_ops::{FlightRecorder, MetricsHub, Published};
use sw_query::{QueryPlane, QueryStats};
use sw_server::uplink::{PiggybackInfo, QueryAnswer};
use sw_sim::{IntervalClock, RngStream, SimDuration, StreamId};
use sw_wireless::frame::{
    checksum64, flip_bit, open_frame, seal_frame, FramePayload, WireDecodeError, WireEncode,
};
use sw_wireless::ReportDelivery;
use sw_workload::HotspotSpec;

use crate::proto::{DecisionRow, Msg};

/// Rng-stream tag for the live-level receive-drop injector (soak
/// tests): deliberately *not* a `StreamId::Faults` stream, so it can
/// model OS-level datagram loss without touching the decision streams.
const RX_DROP_TAG: u64 = 0xD809_0000;

/// Rng-stream tag for the reconnect-backoff jitter draws — the
/// client's own stream in the session's seed space, so even a
/// reconnect storm replays byte-identically from the master seed.
const BACKOFF_TAG: u64 = 0xBAC0_0FF5;

/// Connection attempts granted to the initial registration.
const STARTUP_ATTEMPTS: u32 = 40;

/// Transport-free replica of one simulated client.
///
/// Construction consumes exactly the streams the simulator consumes
/// for client `index` (hotspot, query, sleep, and the fault streams),
/// and each method mirrors one phase of `CellSimulation::step` for
/// that client. Timestamps cross the wire as integer microseconds and
/// convert back via [`time_from_micros`], which round-trips exactly
/// whenever `L·10⁶` is integral.
pub struct LiveMu {
    mu: MobileUnit,
    query_rng: RngStream,
    sleep_rng: RngStream,
    faults: FaultLayer,
    delivery: ReportDelivery,
    clock: IntervalClock,
    encode: WireEncode,
    index: usize,
    next_wake: u64,
    last_settled: u64,
    prev: MuStats,
    /// The query-result plane, when the config arms one — the same
    /// `sw-query` state machine the simulator drives, fed in the same
    /// per-interval order.
    plane: Option<QueryPlane>,
    prev_q: QueryStats,
}

impl LiveMu {
    /// Builds the unit exactly as `CellSimulation::new` builds client
    /// `index` of this configuration: same stream ids, same draw
    /// order, same initial sleep run.
    pub fn new(cfg: &CellConfig, strategy: Strategy, index: usize) -> Self {
        let params = cfg.params;
        let idx = index as u64;
        let spec = HotspotSpec::new(params.n_items, cfg.hotspot_size, cfg.popularity);
        let mut hotspot_rng = cfg.seed.stream(StreamId::Hotspot { index: idx });
        let hotspot = spec.draw(&mut hotspot_rng);
        let mut query_rng = cfg.seed.stream(StreamId::Queries { index: idx });
        let sleep_probability = match &cfg.sleep_profile {
            Some(profile) => profile[index % profile.len()],
            None => params.s,
        };
        // The query plane draws from its own stream family, so arming
        // it leaves every other stream untouched — exactly as in the
        // simulator.
        let plane = cfg.query.map(|qc| {
            QueryPlane::new(&hotspot, qc, cfg.seed.stream(StreamId::QueryPlan { index: idx }))
        });
        let mu_config = MuConfig {
            id: idx,
            hotspot,
            query_rate_per_item: params.lambda,
            sleep_probability,
            cache_capacity: cfg.cache_capacity,
            replacement: cfg.replacement,
            replacement_window: SimDuration::from_secs(params.latency_secs)
                .scaled(params.k as f64),
            piggyback_hits: cfg.piggyback_hits,
            item_universe: Some(params.n_items),
        };
        let handler = strategy.make_handler(&params, cfg.protocol_seed());
        let mut mu = MobileUnit::new(mu_config, handler, &mut query_rng);
        let mut sleep_rng = cfg.seed.stream(StreamId::Sleep { index: idx });
        let k0 = mu.draw_sleep_run(&mut sleep_rng);
        if k0 > 0 {
            mu.enter_sleep();
        }
        let next_wake = if k0 == u64::MAX {
            u64::MAX
        } else {
            1u64.saturating_add(k0)
        };
        let prev = mu.stats();
        Self {
            mu,
            query_rng,
            sleep_rng,
            // The full-fleet layer (same per-client streams as the
            // simulator's); this unit only ever consumes slot `index`.
            faults: FaultLayer::new(cfg.faults.as_ref(), cfg.seed, cfg.n_clients),
            delivery: ReportDelivery::new(cfg.delivery),
            clock: IntervalClock::new(SimDuration::from_secs(params.latency_secs)),
            encode: WireEncode::new(
                params.n_items,
                params.timestamp_bits,
                params.query_bits,
                params.answer_bits,
            ),
            index,
            next_wake,
            last_settled: 0,
            prev,
            plane,
            prev_q: QueryStats::default(),
        }
    }

    /// First interval the unit will be awake for (`u64::MAX`: never).
    pub fn next_wake(&self) -> u64 {
        self.next_wake
    }

    /// The report timestamp the server stamps on interval `i`'s
    /// report, in wire microseconds — the tag live receivers filter
    /// stale datagrams by.
    pub fn expected_report_micros(&self, i: u64) -> u64 {
        time_to_micros(self.clock.report_time(i))
    }

    /// The all-zero decision row an asleep interval contributes.
    pub fn asleep_row(&self, i: u64) -> DecisionRow {
        DecisionRow {
            interval: i,
            ..DecisionRow::default()
        }
    }

    /// Opens interval `i` for an awake unit: lazily credits the sleep
    /// run that just ended and generates the interval's query arrivals
    /// — the simulator's phase 1 for this client.
    pub fn begin_interval(&mut self, i: u64) {
        debug_assert!(i >= self.next_wake, "begin_interval before the scheduled wake");
        self.prev = self.mu.stats();
        let slept = i - self.last_settled - 1;
        if slept > 0 {
            self.mu.credit_asleep_intervals(slept);
        }
        self.last_settled = i;
        let from = self.clock.report_time(i - 1);
        let to = self.clock.report_time(i);
        self.mu.begin_awake_interval(from, to, &mut self.query_rng);
        if let Some(plane) = self.plane.as_mut() {
            self.prev_q = plane.stats();
            plane.begin_awake_interval();
        }
    }

    /// Draws this interval's delivery fate from the unit's own fault
    /// stream (always [`ReportFate::Heard`] when no plan is armed) —
    /// the simulator's phase-4 pre-listen draw.
    pub fn report_fate(&mut self, i: u64) -> ReportFate {
        if !self.faults.is_active() {
            return ReportFate::Heard;
        }
        let delivery = self.delivery;
        self.faults
            .report_fate(self.index, i, |drift| delivery.misses_with_drift(drift))
    }

    /// Processes a received report *frame* (datagram minus checksum
    /// trailer) under the drawn fate. A `Corrupted` fate flips the
    /// same bit the simulator would flip in these bytes, verifies the
    /// checksum catches it, and misses the report; `Heard` decodes and
    /// applies it, returning the uplink requests the report could not
    /// satisfy locally.
    pub fn hear_frame(
        &mut self,
        frame: &[u8],
        fate: ReportFate,
    ) -> Result<Vec<(u64, Option<PiggybackInfo>)>, WireDecodeError> {
        match fate {
            ReportFate::Corrupted => {
                let clean = checksum64(frame);
                let mut damaged = frame.to_vec();
                let bit = self
                    .faults
                    .corrupt_bit_index(self.index, damaged.len() as u64 * 8);
                flip_bit(&mut damaged, bit);
                if checksum64(&damaged) == clean {
                    self.faults.note_undetected_corruption();
                }
                self.miss_report();
                Ok(Vec::new())
            }
            ReportFate::Lost | ReportFate::DriftMissed => {
                self.miss_report();
                Ok(Vec::new())
            }
            ReportFate::Heard => {
                let decoded = self.encode.deserialize(frame)?;
                let outcome = self.mu.hear_report_and_answer(&decoded.payload);
                Ok(outcome.uplink_requests)
            }
        }
    }

    /// Records a report that never arrived (loss, drift, a receive
    /// timeout): pending queries stay queued for the next report.
    pub fn miss_report(&mut self) {
        self.mu.miss_report();
        if let Some(plane) = self.plane.as_mut() {
            plane.on_report_missed();
        }
    }

    /// Runs the query plane's footprint check against the item cache
    /// after a heard report closing interval `i` — the simulator's
    /// merge-phase call — returning the footprint items to fetch over
    /// the uplink before [`LiveMu::settle_queries`]. Empty when no
    /// plane is armed.
    pub fn check_queries(&mut self, i: u64) -> Vec<u64> {
        let t_i = self.clock.report_time(i);
        match self.plane.as_mut() {
            Some(plane) => plane.observe_report(self.mu.cache(), t_i).fetch,
            None => Vec::new(),
        }
    }

    /// Settles the query plane for interval `i` after the fetch list
    /// was served: materializes missed results and resolves
    /// transactional reads. No-op when no plane is armed.
    pub fn settle_queries(&mut self, i: u64) {
        let t_i = self.clock.report_time(i);
        if let Some(plane) = self.plane.as_mut() {
            plane.settle(self.mu.cache(), t_i);
        }
    }

    /// Accumulated query-plane counters (`None`: no plane armed).
    pub fn query_stats(&self) -> Option<QueryStats> {
        self.plane.as_ref().map(|p| p.stats())
    }

    /// Snapshot of every materialized query-result row as `(item,
    /// value, wire-micros verification timestamp)` — audited against
    /// the server's [`ValueHistory`] exactly like the item cache.
    pub fn query_snapshot(&self) -> Vec<(u64, u64, u64)> {
        let Some(plane) = self.plane.as_ref() else {
            return Vec::new();
        };
        plane
            .cache()
            .iter()
            .flat_map(|entry| {
                entry
                    .rows
                    .iter()
                    .map(|r| (r.item, r.value, time_to_micros(r.timestamp)))
            })
            .collect()
    }

    /// Serializes and seals an uplink query frame for `item`. The
    /// datagram epoch header numbers *broadcasters*; client-sourced
    /// frames always carry epoch 0.
    pub fn query_frame(&self, item: u64) -> Vec<u8> {
        let payload = FramePayload::UplinkQuery {
            client: self.index as u64,
            item,
        };
        seal_frame(0, self.encode.serialize_payload(&payload))
    }

    /// Opens, decodes, and installs an uplink answer datagram.
    pub fn install_answer_frame(&mut self, datagram: &[u8]) -> Result<(), WireDecodeError> {
        let (_epoch, frame) = open_frame(datagram)?;
        let decoded = self.encode.deserialize(frame)?;
        let FramePayload::QueryAnswer {
            item,
            value,
            ts_micros,
        } = decoded.payload
        else {
            return Err(WireDecodeError::Malformed("expected a query answer"));
        };
        self.mu.install_answer(QueryAnswer {
            item,
            value,
            timestamp: time_from_micros(ts_micros),
        });
        Ok(())
    }

    /// Closes interval `i`: computes the decision row from the stat
    /// deltas, then draws the next sleep run and schedules the wake —
    /// the simulator's phase 8 for this client.
    pub fn end_interval(&mut self, i: u64) -> DecisionRow {
        let s = self.mu.stats();
        let q = self
            .plane
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        let row = DecisionRow {
            interval: i,
            awake: true,
            heard: s.reports_missed == self.prev.reports_missed,
            queries: s.queries_posed - self.prev.queries_posed,
            hits: s.hit_events - self.prev.hit_events,
            misses: s.miss_events - self.prev.miss_events,
            invalidated: s.items_invalidated - self.prev.items_invalidated,
            drops: s.cache_drops - self.prev.cache_drops,
            qhits: q.hits - self.prev_q.hits,
            qmisses: q.misses - self.prev_q.misses,
            qcommits: q.txn_commits - self.prev_q.txn_commits,
            qaborts: q.txn_aborts - self.prev_q.txn_aborts,
            evictions: s.evictions - self.prev.evictions,
            capacity_misses: s.capacity_misses - self.prev.capacity_misses,
        };
        let k = self.mu.draw_sleep_run(&mut self.sleep_rng);
        if k > 0 {
            self.mu.enter_sleep();
        }
        self.next_wake = if k == u64::MAX {
            u64::MAX
        } else {
            (i + 1).saturating_add(k)
        };
        row
    }

    /// Cumulative client statistics.
    pub fn stats(&self) -> MuStats {
        self.mu.stats()
    }

    /// The cell's wire-encoding parameters.
    pub fn encoder(&self) -> WireEncode {
        self.encode
    }

    /// Snapshot of every cache entry as `(item, value, wire-micros
    /// validity timestamp)` — the live analogue of the simulator's
    /// phase-6 safety sweep, audited against the server's
    /// [`ValueHistory`] after the run.
    pub fn cache_snapshot(&self) -> Vec<(u64, u64, u64)> {
        let cache = self.mu.cache();
        cache
            .sorted_items()
            .into_iter()
            .map(|item| {
                let entry = cache.peek(item).expect("iterating cached items");
                (item, entry.value, time_to_micros(entry.timestamp))
            })
            .collect()
    }
}

/// One audited cache entry from one awake interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAuditRow {
    /// Interval the snapshot was taken at.
    pub interval: u64,
    /// Cached item.
    pub item: u64,
    /// Cached value.
    pub value: u64,
    /// Validity timestamp, wire microseconds.
    pub ts_micros: u64,
}

/// Audits recorded cache entries against the server's value history;
/// returns `(entries_checked, violations)` — the live analogue of the
/// simulator's `SafetyStats`.
pub fn audit_against_history(history: &ValueHistory, audit: &[CacheAuditRow]) -> (u64, u64) {
    let mut violations = 0u64;
    for row in audit {
        if !history.is_consistent(row.item, row.value, time_from_micros(row.ts_micros)) {
            violations += 1;
        }
    }
    (audit.len() as u64, violations)
}

/// Options for [`run_mu`].
#[derive(Debug, Clone, Default)]
pub struct MuOptions {
    /// Probability of deliberately dropping each interval's report
    /// datagram at the receiver (seeded, live-level; models OS-side
    /// UDP loss for the soak test). Zero disables.
    pub rx_drop: f64,
    /// Record a per-interval cache snapshot for the staleness audit.
    pub audit_cache: bool,
    /// Flight-recorder ring size: the last `flight_capacity` intervals
    /// of decision rows and report fates, kept for a crash dump. 0
    /// (the default) disables the ring.
    pub flight_capacity: usize,
    /// Dump the flight ring after this many *consecutive* missed
    /// reports — a fault storm, the live failure mode worth forensics.
    /// 0 (the default) never triggers; the dump fires at most once per
    /// session and needs [`MuOptions::flight_dir`] set.
    pub storm_threshold: u64,
    /// Directory the fault-storm dump (`sw-flight-mu<index>.ndjson`)
    /// is written to. `None` disables the automatic dump (the ring is
    /// still returned in [`LiveMuReport::flight`]).
    pub flight_dir: Option<PathBuf>,
    /// A metrics hub to publish per-interval client gauges to (hit
    /// ratio, reports heard/missed, staleness window). `None` (the
    /// default) publishes nothing.
    pub metrics: Option<Arc<MetricsHub>>,
    /// Additional server addresses to fall back to, in announced
    /// takeover order. The unit rotates through `server` plus these
    /// (plus whatever roster the server announces after `Welcome`)
    /// whenever its current server goes quiet or dies.
    pub successors: Vec<SocketAddr>,
    /// Paced sessions only: after this many *consecutive* missed
    /// reports, probe the rotation for a (possibly new) primary.
    /// 0 defaults to 2 when `successors` is non-empty, else never —
    /// an unreplicated session treats silence as plain loss.
    pub reconnect_after: u64,
}

/// What one live client brings home.
pub struct LiveMuReport {
    /// Fleet index.
    pub index: usize,
    /// One decision row per interval, `1..=intervals`.
    pub rows: Vec<DecisionRow>,
    /// Cumulative client statistics.
    pub stats: MuStats,
    /// Cache snapshots, when [`MuOptions::audit_cache`] was set.
    pub audit: Vec<CacheAuditRow>,
    /// Reports received intact over the socket.
    pub reports_heard: u64,
    /// Awake intervals with no intact report (lost, dropped, corrupt,
    /// or timed out).
    pub reports_missed: u64,
    /// Instrumentation snapshot (`observe` feature + configured label).
    pub observe: Option<ObserveSnapshot>,
    /// The client's flight ring: the last
    /// [`MuOptions::flight_capacity`] intervals of decision facts.
    pub flight: FlightRecorder,
    /// Times the unit re-registered mid-session (0 = the original
    /// connection survived the whole run).
    pub reconnects: u64,
    /// Query-plane counters (all zeros when the cell configuration
    /// carried no [`sw_query::QueryPlaneConfig`]).
    pub query: QueryStats,
}

/// How long past the nominal broadcast instant a paced client keeps
/// listening before declaring the report missed.
fn paced_grace(interval: Duration) -> Duration {
    interval / 2
}

fn other_err(what: String) -> io::Error {
    io::Error::other(what)
}

/// Bounded exponential backoff with seeded jitter for TCP reconnects:
/// `20ms · 2^min(n,5)`, scaled by a uniform factor in `[0.5, 1.5)`
/// drawn from the client's own [`BACKOFF_TAG`] stream, capped at one
/// second per sleep.
struct Backoff {
    rng: RngStream,
    attempt: u32,
}

impl Backoff {
    fn new(cfg: &CellConfig, index: usize) -> Self {
        Self {
            rng: cfg.seed.stream(StreamId::Custom {
                tag: BACKOFF_TAG ^ index as u64,
            }),
            attempt: 0,
        }
    }

    fn delay(&mut self) -> Duration {
        let base_ms = 20u64 << self.attempt.min(5);
        self.attempt += 1;
        let jittered = (base_ms as f64 * (0.5 + self.rng.uniform())) as u64;
        Duration::from_millis(jittered.min(1_000))
    }

    fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// One live TCP control connection.
struct Link {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Link {
    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        msg.write_to(&mut self.writer)
    }

    fn recv(&mut self) -> io::Result<Msg> {
        Msg::read_from(&mut self.reader)
    }
}

/// The session geometry announced in the first `Welcome`.
#[derive(Clone, Copy)]
struct SessionInfo {
    interval_ms: u64,
    intervals: u64,
    lockstep: bool,
}

/// What a lockstep `Start` wait resolved to.
enum StartOutcome {
    /// `Start(i)` for the interval being waited on.
    Now,
    /// `Start(j)` with `j > i`: the broadcaster (a fresh successor)
    /// skipped ahead; the skipped intervals were never aired.
    Future(u64),
    /// The session is over.
    Halt,
}

/// The client's view of the server fleet: the connect rotation, the
/// live control link (if any), and the highest broadcaster epoch
/// heard — the fence that silences deposed primaries.
struct Uplink {
    targets: Vec<SocketAddr>,
    cursor: usize,
    link: Option<Link>,
    epoch_seen: u64,
    reconnects: u64,
}

impl Uplink {
    fn new(server: SocketAddr, successors: &[SocketAddr]) -> Self {
        let mut up = Self {
            targets: vec![server],
            cursor: 0,
            link: None,
            epoch_seen: 0,
            reconnects: 0,
        };
        up.merge_targets(successors);
        up
    }

    fn merge_targets(&mut self, more: &[SocketAddr]) {
        for addr in more {
            if !self.targets.contains(addr) {
                self.targets.push(*addr);
            }
        }
    }

    fn drop_link(&mut self) {
        self.link = None;
    }

    /// Walks the target rotation until a primary accepts the
    /// registration, up to `max_attempts` tries. [`Msg::Standby`]
    /// replies (live replicas) advance the rotation immediately;
    /// connect/handshake failures additionally sleep the backoff.
    fn connect(
        &mut self,
        index: usize,
        udp_port: u16,
        backoff: &mut Backoff,
        max_attempts: u32,
    ) -> io::Result<SessionInfo> {
        self.link = None;
        let mut last_err: Option<io::Error> = None;
        for _ in 0..max_attempts {
            let target = self.targets[self.cursor % self.targets.len()];
            match self.try_target(target, index, udp_port) {
                Ok(Some(info)) => {
                    backoff.reset();
                    return Ok(info);
                }
                Ok(None) => self.cursor += 1,
                Err(e) => {
                    last_err = Some(e);
                    self.cursor += 1;
                    std::thread::sleep(backoff.delay());
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| other_err("no primary found in the server rotation".into())))
    }

    /// One registration attempt. `Ok(None)`: the target is a standby
    /// replica — try the next one.
    fn try_target(
        &mut self,
        target: SocketAddr,
        index: usize,
        udp_port: u16,
    ) -> io::Result<Option<SessionInfo>> {
        let tcp = TcpStream::connect_timeout(&target, Duration::from_millis(500))?;
        tcp.set_nodelay(true)?;
        let mut link = Link {
            reader: BufReader::new(tcp.try_clone()?),
            writer: BufWriter::new(tcp),
        };
        link.send(&Msg::Hello {
            index: index as u32,
            udp_port,
        })?;
        match link.recv()? {
            Msg::Welcome {
                interval_ms,
                intervals,
                lockstep,
            } => {
                // The successor roster rides right behind the Welcome.
                match link.recv()? {
                    Msg::Successors { peers } => self.merge_targets(&peers),
                    other => {
                        return Err(other_err(format!("expected Successors, got {other:?}")))
                    }
                }
                self.link = Some(link);
                Ok(Some(SessionInfo {
                    interval_ms,
                    intervals,
                    lockstep,
                }))
            }
            Msg::Standby { epoch } => {
                self.epoch_seen = self.epoch_seen.max(epoch);
                Ok(None)
            }
            other => Err(other_err(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// Lockstep: blocks for the next `Start`, re-registering through
    /// the rotation whenever the link dies (the primary crashed). A
    /// reconnect here is hard-bounded — a lockstep session cannot
    /// proceed without a broadcaster.
    fn wait_start(
        &mut self,
        i: u64,
        index: usize,
        udp_port: u16,
        backoff: &mut Backoff,
        flight: &mut FlightRecorder,
    ) -> io::Result<StartOutcome> {
        loop {
            if self.link.is_none() {
                self.connect(index, udp_port, backoff, STARTUP_ATTEMPTS)?;
                self.reconnects += 1;
                flight.push(
                    i,
                    "reconnect",
                    &[
                        ("epoch", Value::U64(self.epoch_seen)),
                        ("reconnects", Value::U64(self.reconnects)),
                    ],
                );
            }
            let link = self.link.as_mut().expect("link just ensured");
            match link.recv() {
                Ok(Msg::Start { interval }) if interval == i => return Ok(StartOutcome::Now),
                Ok(Msg::Start { interval }) if interval > i => {
                    return Ok(StartOutcome::Future(interval))
                }
                Ok(Msg::Start { interval }) => {
                    return Err(other_err(format!("Start({interval}) after interval {i}")))
                }
                Ok(Msg::Halt) => return Ok(StartOutcome::Halt),
                Ok(other) => {
                    return Err(other_err(format!("expected Start({i}), got {other:?}")))
                }
                Err(_) => self.link = None,
            }
        }
    }

    /// Best-effort send: a failure just drops the link (the next
    /// barrier wait or probe re-registers).
    fn send_soft(&mut self, msg: &Msg) {
        let died = match self.link.as_mut() {
            Some(link) => link.send(msg).is_err(),
            None => false,
        };
        if died {
            self.link = None;
        }
    }

    /// Uplink query round-trip. `Ok(None)`: the server halted the
    /// session mid-exchange. `Err`: the link died (the caller treats
    /// the remaining queries as unanswered and moves on).
    fn exchange_query(&mut self, frame: Vec<u8>) -> io::Result<Option<Vec<u8>>> {
        let link = self
            .link
            .as_mut()
            .ok_or_else(|| other_err("no live control link".into()))?;
        let result = (|| -> io::Result<Option<Vec<u8>>> {
            link.send(&Msg::Query { frame })?;
            match link.recv()? {
                Msg::Answer { frame } => Ok(Some(frame)),
                Msg::Halt => Ok(None),
                other => Err(other_err(format!("expected Answer, got {other:?}"))),
            }
        })();
        if result.is_err() {
            self.link = None;
        }
        result
    }
}

/// Runs one live client session against an `sw-serve` daemon at
/// `server`: registers, listens for every report it is awake for,
/// answers queries from cache or uplink, and plays the strategy's own
/// recovery on every miss. Returns once the server halts the session.
///
/// `cfg`/`strategy`/`index` must match the server's configuration —
/// the client derives its query/sleep/fault streams from them, which
/// is exactly what makes the session reproducible.
pub fn run_mu(
    server: SocketAddr,
    cfg: &CellConfig,
    strategy: Strategy,
    index: usize,
    opts: MuOptions,
) -> io::Result<LiveMuReport> {
    let mut obs = match &cfg.observe {
        Some(label) => Recorder::enabled(format!("{label}.mu{index}")),
        None => Recorder::disabled(),
    };
    let mut live = LiveMu::new(cfg, strategy, index);
    let mut rx_drop_rng = (opts.rx_drop > 0.0)
        .then(|| cfg.seed.stream(StreamId::Custom { tag: RX_DROP_TAG ^ index as u64 }));

    let udp = UdpSocket::bind(("127.0.0.1", 0))?;
    let udp_port = udp.local_addr()?.port();
    let mut backoff = Backoff::new(cfg, index);
    let mut uplink = Uplink::new(server, &opts.successors);
    let SessionInfo {
        interval_ms,
        intervals,
        lockstep,
    } = uplink.connect(index, udp_port, &mut backoff, STARTUP_ATTEMPTS)?;
    let interval = Duration::from_millis(interval_ms.max(1));
    let t0 = Instant::now();
    // Paced probe threshold: consecutive misses before hunting for a
    // successor (0 = never; silence is then indistinguishable from
    // loss, the unreplicated default).
    let reconnect_after = match opts.reconnect_after {
        0 if opts.successors.is_empty() => 0,
        0 => 2,
        n => n,
    };
    let mut pending_start: Option<u64> = None;

    let mut rows = Vec::with_capacity(intervals as usize);
    let mut reports_heard = 0u64;
    let mut reports_missed = 0u64;
    let mut audit = Vec::new();
    // A datagram for a future interval, pulled off the socket while
    // hunting for the current one (paced mode only).
    let mut lookahead: Option<(u64, Vec<u8>)> = None;
    let mut halted = false;
    let mut flight = FlightRecorder::new(opts.flight_capacity);
    // Fault-storm forensics: count *consecutive* missed reports, dump
    // the ring once when the run crosses the configured threshold.
    let mut consecutive_missed = 0u64;
    let mut storm_dumped = false;
    let mut last_heard_interval = 0u64;
    let index_label = index.to_string();
    let bounded = cfg.cache_capacity.is_some();
    let publish_tick = |i: u64,
                        heard: u64,
                        missed: u64,
                        window: u64,
                        awake: bool,
                        s: &MuStats,
                        q: Option<QueryStats>| {
        let Some(hub) = opts.metrics.as_ref() else {
            return;
        };
        let answered = s.hit_events + s.miss_events;
        let hit_ratio = if answered == 0 {
            0.0
        } else {
            s.hit_events as f64 / answered as f64
        };
        let mut tick = Published::at(i)
            .label("role", "mu")
            .label("index", index_label.clone())
            .label("strategy", strategy.name())
            .gauge("awake", if awake { 1.0 } else { 0.0 })
            .gauge("cache_hit_ratio", hit_ratio)
            .gauge("reports_heard", heard as f64)
            .gauge("reports_missed", missed as f64)
            .gauge("staleness_window", window as f64)
            .gauge("queries", s.queries_posed as f64);
        if let Some(q) = q {
            tick = tick
                .gauge("sw_query_hits", q.hits as f64)
                .gauge("sw_query_misses", q.misses as f64)
                .gauge("sw_query_invalidated", q.entries_invalidated as f64)
                .gauge("sw_query_txn_commits", q.txn_commits as f64)
                .gauge("sw_query_txn_aborts", q.txn_aborts as f64);
        }
        if bounded {
            tick = tick
                .gauge("sw_capacity_evictions", s.evictions as f64)
                .gauge("sw_capacity_misses", s.capacity_misses as f64);
        }
        hub.publish(tick);
    };

    'session: for i in 1..=intervals {
        // `started == false` only mid-failover in lockstep: the
        // broadcaster skipped this interval entirely (it died before
        // airing it and its successor resumed later), so the unit
        // settles it locally — a forced miss consuming no fault
        // randomness, the exact twin of a simulated blackout window —
        // and sends no Done (it never saw a Start).
        let started = if lockstep {
            match pending_start {
                Some(j) if j > i => false,
                Some(_) => {
                    pending_start = None;
                    true
                }
                None => match uplink.wait_start(i, index, udp_port, &mut backoff, &mut flight)? {
                    StartOutcome::Now => true,
                    StartOutcome::Future(j) => {
                        pending_start = Some(j);
                        false
                    }
                    StartOutcome::Halt => break 'session,
                },
            }
        } else {
            true
        };
        if i < live.next_wake() {
            // Asleep: no listening, no rng draws — the simulator's
            // sleepers cost nothing per interval either.
            let row = live.asleep_row(i);
            rows.push(row);
            flight.push(i, "decision", &[("awake", Value::U64(0))]);
            publish_tick(
                i,
                reports_heard,
                reports_missed,
                i - last_heard_interval,
                false,
                &live.stats(),
                live.query_stats(),
            );
            if lockstep {
                if started {
                    uplink.send_soft(&Msg::Done { row });
                }
            } else {
                sleep_until(t0 + interval * i as u32);
            }
            continue;
        }

        live.begin_interval(i);
        if !started {
            live.miss_report();
            reports_missed += 1;
            consecutive_missed += 1;
            obs.event(i, "report_missed", &[]);
            flight.push(
                i,
                "report_blackout",
                &[("consecutive", Value::U64(consecutive_missed))],
            );
            let row = live.end_interval(i);
            rows.push(row);
            publish_tick(
                i,
                reports_heard,
                reports_missed,
                i - last_heard_interval,
                true,
                &live.stats(),
                live.query_stats(),
            );
            if opts.audit_cache {
                audit.extend(live.cache_snapshot().into_iter().map(|(item, value, ts)| {
                    CacheAuditRow {
                        interval: i,
                        item,
                        value,
                        ts_micros: ts,
                    }
                }));
                audit.extend(live.query_snapshot().into_iter().map(|(item, value, ts)| {
                    CacheAuditRow {
                        interval: i,
                        item,
                        value,
                        ts_micros: ts,
                    }
                }));
            }
            continue;
        }
        let fate = live.report_fate(i);
        let expected = live.expected_report_micros(i);
        // Live-level receive drop (soak): the datagram is simply never
        // read; a fate that already missed the report skips the socket
        // too (the bytes go stale and are discarded by timestamp). A
        // corruption fate still needs the real bytes to flip.
        let dropped_rx = match rx_drop_rng.as_mut() {
            Some(rng) => rng.uniform() < opts.rx_drop,
            None => false,
        };
        let wants_bytes = fate == ReportFate::Heard && !dropped_rx || fate == ReportFate::Corrupted;
        let deadline = if lockstep {
            Instant::now() + Duration::from_secs(5)
        } else {
            t0 + interval * i as u32 + paced_grace(interval)
        };
        let datagram = if wants_bytes {
            recv_report(
                &udp,
                live.encoder(),
                expected,
                deadline,
                &mut lookahead,
                &mut uplink.epoch_seen,
            )?
        } else {
            None
        };
        let requests = match &datagram {
            Some(frame) => live
                .hear_frame(frame, fate)
                .map_err(|e| other_err(format!("undecodable report: {e}")))?,
            None => {
                live.miss_report();
                Vec::new()
            }
        };
        let heard = datagram.is_some() && fate == ReportFate::Heard;
        if heard {
            reports_heard += 1;
            consecutive_missed = 0;
            last_heard_interval = i;
        } else {
            reports_missed += 1;
            obs.event(i, "report_missed", &[]);
            consecutive_missed += 1;
            flight.push(
                i,
                "report_missed",
                &[("consecutive", Value::U64(consecutive_missed))],
            );
            if opts.storm_threshold > 0
                && consecutive_missed >= opts.storm_threshold
                && !storm_dumped
            {
                storm_dumped = true;
                flight.push(
                    i,
                    "fault_storm",
                    &[
                        ("consecutive", Value::U64(consecutive_missed)),
                        ("threshold", Value::U64(opts.storm_threshold)),
                    ],
                );
                if let Some(dir) = opts.flight_dir.as_deref() {
                    let path = dir.join(format!("sw-flight-mu{index}.ndjson"));
                    let reason = format!(
                        "fault storm: {consecutive_missed} consecutive missed \
                         reports at interval {i}"
                    );
                    match flight.dump(&path, &reason) {
                        Ok(n) => eprintln!(
                            "mu{index}: fault storm; dumped {n}-byte flight ring to {}",
                            path.display()
                        ),
                        Err(e) => eprintln!(
                            "mu{index}: fault storm; flight dump to {} failed: {e}",
                            path.display()
                        ),
                    }
                }
            }
            if !lockstep && reconnect_after > 0 && consecutive_missed >= reconnect_after {
                // The broadcaster has gone quiet; probe the rotation
                // for the announced successor. Failure is soft — the
                // unit stays offline, treats further silence as
                // ordinary misses, and probes again next interval.
                uplink.drop_link();
                let budget = uplink.targets.len() as u32 * 2;
                if uplink.connect(index, udp_port, &mut backoff, budget).is_ok() {
                    uplink.reconnects += 1;
                    consecutive_missed = 0;
                    flight.push(
                        i,
                        "reconnect",
                        &[
                            ("epoch", Value::U64(uplink.epoch_seen)),
                            ("reconnects", Value::U64(uplink.reconnects)),
                        ],
                    );
                }
            }
        }
        for (item, _piggyback) in requests {
            // Piggybacked hit histories are an adaptive-strategy input;
            // the live wire carries the plain query (static strategies
            // never read them server-side).
            match uplink.exchange_query(live.query_frame(item)) {
                Ok(Some(frame)) => live
                    .install_answer_frame(&frame)
                    .map_err(|e| other_err(format!("undecodable answer: {e}")))?,
                Ok(None) => {
                    halted = true;
                    break 'session;
                }
                // The link died mid-exchange (the server crashed): the
                // remaining queries stay unanswered; the next barrier
                // wait or probe re-registers.
                Err(_) => break,
            }
        }
        if heard {
            // Query plane, in the simulator's order: footprint check
            // against the just-settled item cache, fetch the missing
            // footprint rows over the same uplink, then materialize and
            // resolve transactional reads. Missed reports skip all of
            // it — the plane already queued its work via miss_report.
            for item in live.check_queries(i) {
                match uplink.exchange_query(live.query_frame(item)) {
                    Ok(Some(frame)) => live
                        .install_answer_frame(&frame)
                        .map_err(|e| other_err(format!("undecodable answer: {e}")))?,
                    Ok(None) => {
                        halted = true;
                        break 'session;
                    }
                    Err(_) => break,
                }
            }
            live.settle_queries(i);
        }
        let row = live.end_interval(i);
        rows.push(row);
        flight.push(
            i,
            "decision",
            &[
                ("awake", Value::U64(1)),
                ("heard", Value::U64(row.heard as u64)),
                ("queries", Value::U64(row.queries)),
                ("hits", Value::U64(row.hits)),
                ("misses", Value::U64(row.misses)),
                ("invalidated", Value::U64(row.invalidated)),
                ("drops", Value::U64(row.drops)),
            ],
        );
        publish_tick(
            i,
            reports_heard,
            reports_missed,
            i - last_heard_interval,
            true,
            &live.stats(),
            live.query_stats(),
        );
        if opts.audit_cache {
            audit.extend(live.cache_snapshot().into_iter().map(|(item, value, ts)| {
                CacheAuditRow {
                    interval: i,
                    item,
                    value,
                    ts_micros: ts,
                }
            }));
            audit.extend(live.query_snapshot().into_iter().map(|(item, value, ts)| {
                CacheAuditRow {
                    interval: i,
                    item,
                    value,
                    ts_micros: ts,
                }
            }));
        }
        if lockstep {
            uplink.send_soft(&Msg::Done { row });
        }
    }
    if !halted {
        uplink.send_soft(&Msg::Bye);
    }

    let stats = live.stats();
    let query = live.query_stats().unwrap_or_default();
    if obs.is_enabled() {
        obs.add("queries", stats.queries_posed);
        obs.add("hits", stats.hit_events);
        obs.add("misses", stats.miss_events);
        obs.add("reports_heard", reports_heard);
        obs.add("reports_missed", reports_missed);
        obs.add("cache_drops", stats.cache_drops);
        obs.add("items_invalidated", stats.items_invalidated);
        obs.add("query_hits", query.hits);
        obs.add("query_misses", query.misses);
        obs.add("query_txn_commits", query.txn_commits);
        obs.add("query_txn_aborts", query.txn_aborts);
    }
    Ok(LiveMuReport {
        index,
        rows,
        stats,
        audit,
        reports_heard,
        reports_missed,
        observe: obs.snapshot(),
        flight,
        reconnects: uplink.reconnects,
        query,
    })
}

/// Pulls datagrams off the socket until one decodes to a report
/// stamped `expected` micros, the deadline passes, or a *future*
/// report shows up (stashed in `lookahead`; the current one is then
/// declared missed). Stale or undecodable datagrams are discarded.
fn recv_report(
    udp: &UdpSocket,
    encode: WireEncode,
    expected: u64,
    deadline: Instant,
    lookahead: &mut Option<(u64, Vec<u8>)>,
    epoch_floor: &mut u64,
) -> io::Result<Option<Vec<u8>>> {
    if let Some((ts, _)) = lookahead {
        if *ts == expected {
            return Ok(lookahead.take().map(|(_, frame)| frame));
        }
        if *ts > expected {
            return Ok(None);
        }
        *lookahead = None;
    }
    // UDP bounds a datagram at 64 KiB; a live report must fit one
    // (the paper's reports are small by design — §3 sizes them in
    // hundreds of bits; even a full Scenario-1 TS window is ~4 KiB).
    let mut buf = vec![0u8; 1 << 16];
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
        else {
            return Ok(None);
        };
        udp.set_read_timeout(Some(remaining))?;
        let n = match udp.recv(&mut buf) {
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        let Ok((epoch, frame)) = open_frame(&buf[..n]) else {
            continue; // line noise: failed the checksum
        };
        if epoch < *epoch_floor {
            continue; // a deposed broadcaster from an older epoch
        }
        *epoch_floor = epoch.max(*epoch_floor);
        let Some(ts) = report_stamp_micros(&encode, frame) else {
            continue; // not a report frame
        };
        match ts.cmp(&expected) {
            std::cmp::Ordering::Equal => return Ok(Some(frame.to_vec())),
            std::cmp::Ordering::Less => continue, // stale: slept/missed past it
            std::cmp::Ordering::Greater => {
                *lookahead = Some((ts, frame.to_vec()));
                return Ok(None);
            }
        }
    }
}

/// Decodes a frame far enough to read a report's timestamp stamp —
/// the tag live receivers discard stale datagrams by. `None` for
/// non-report traffic or undecodable bytes (reports are small by
/// design, §3, so the full decode is cheap).
fn report_stamp_micros(encode: &WireEncode, frame: &[u8]) -> Option<u64> {
    match encode.deserialize(frame).ok()?.payload {
        FramePayload::TimestampReport {
            report_ts_micros, ..
        }
        | FramePayload::AmnesicReport {
            report_ts_micros, ..
        }
        | FramePayload::SignatureReport {
            report_ts_micros, ..
        }
        | FramePayload::AdaptiveTimestampReport {
            report_ts_micros, ..
        }
        | FramePayload::HybridReport {
            report_ts_micros, ..
        } => Some(report_ts_micros),
        _ => None,
    }
}

fn sleep_until(at: Instant) {
    let now = Instant::now();
    if let Some(d) = at.checked_duration_since(now) {
        std::thread::sleep(d);
    }
}
