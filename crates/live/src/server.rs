//! The live invalidation-report server (`sw-serve`'s engine).
//!
//! One daemon per cell, stateless toward its clients exactly as the
//! paper prescribes (§2): it never tracks who is listening, what they
//! cache, or when they sleep. It owns the database, ingests updates
//! (a seeded in-process update engine and/or `Publish` messages over
//! TCP), and every `L` milliseconds builds one invalidation report via
//! the *same* `crates/server` report builders the simulator uses and
//! broadcasts it as one sealed UDP datagram per registered receiver.
//! Uplink queries arrive over TCP and are answered from the current
//! database state stamped with the current report-tick time — the
//! simulator's `UplinkProcessor::answer` rule.
//!
//! Threading model: one accept thread, one connection thread per
//! client (registration, uplink answers, barrier collection), and one
//! ticker thread that owns the report cadence. All server state lives
//! in a single mutex (`Core`); the only cross-thread signals are the
//! registration condvar (all clients present → session starts) and
//! the lockstep barrier condvar (all clients done → next interval).
//!
//! Pacing is either wall-clock (`Pace::Paced`, the daemon mode) or a
//! TCP barrier (`Pace::Lockstep`, the conformance mode, where the
//! session advances exactly one interval at a time with no timers at
//! all — determinism does not race the scheduler).

use std::io::{self, BufReader, BufWriter};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sleepers::adaptive::FeedbackMethod;
use sleepers::safety::ValueHistory;
use sleepers::{CellConfig, ServerDriver, Strategy};
use sw_client::handler::time_to_micros;
use sw_observe::event::Value;
use sw_observe::{ObserveSnapshot, Recorder};
use sw_ops::{FlightRecorder, MetricsExporter, MetricsHub, Published};
use sw_server::database::Database;
use sw_server::update::UpdateEngine;
use sw_server::uplink::UplinkProcessor;
use sw_sim::{IntervalClock, RngStream, SimDuration, StreamId};
use sw_wireless::frame::{open_frame, seal_frame, FramePayload, WireEncode};

use crate::proto::{DecisionRow, Msg};

/// How the session advances from one report interval to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pace {
    /// Deterministic TCP barrier: broadcast, `Start`, wait for every
    /// client's `Done`. No wall clock anywhere — conformance mode.
    Lockstep,
    /// Wall-clock cadence: report `i` airs at `t₀ + i·interval`.
    Paced {
        /// Real milliseconds between broadcasts (the live `L`).
        interval_ms: u64,
    },
}

/// Session options for [`LiveServer::spawn`].
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Total broadcast intervals before the server halts the session.
    pub intervals: u64,
    /// Pacing mode.
    pub pace: Pace,
    /// How long to wait for the full fleet to register.
    pub registration_timeout: Duration,
    /// TCP address to listen on (port 0: ephemeral; read the bound
    /// port back from [`ServerHandle::addr`]).
    pub bind: SocketAddr,
    /// When set, serve a live metrics plane (`/metrics`, `/healthz`,
    /// `/snapshot.json`) on this address for the session's lifetime
    /// (port 0: ephemeral; read it back from
    /// [`ServerHandle::metrics_addr`]). `None` (the default) compiles
    /// the session exactly as before — no listener, no publishing.
    pub metrics_bind: Option<SocketAddr>,
    /// Flight-recorder ring size: the last `flight_capacity` intervals
    /// of per-tick facts kept for a crash dump. 0 (the default)
    /// disables the ring.
    pub flight_capacity: usize,
    /// Directory for automatic flight dumps (the takeover dump a
    /// promoted replica writes). `None` (the default) skips them.
    pub flight_dir: Option<PathBuf>,
}

impl LiveOptions {
    fn new(intervals: u64, pace: Pace) -> Self {
        Self {
            intervals,
            pace,
            registration_timeout: Duration::from_secs(30),
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            metrics_bind: None,
            flight_capacity: 0,
            flight_dir: None,
        }
    }

    /// Lockstep (conformance) session over `intervals` intervals.
    pub fn lockstep(intervals: u64) -> Self {
        Self::new(intervals, Pace::Lockstep)
    }

    /// Wall-clock session: `intervals` reports, one every
    /// `interval_ms` real milliseconds.
    pub fn paced(intervals: u64, interval_ms: u64) -> Self {
        Self::new(intervals, Pace::Paced { interval_ms })
    }

    /// Listens on a fixed address instead of an ephemeral port.
    pub fn with_bind(mut self, bind: SocketAddr) -> Self {
        self.bind = bind;
        self
    }

    /// Serves the metrics plane on `bind` for the session's lifetime.
    pub fn with_metrics(mut self, bind: SocketAddr) -> Self {
        self.metrics_bind = Some(bind);
        self
    }

    /// Keeps the last `capacity` intervals in the flight ring.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Writes automatic flight dumps (takeover) under `dir`.
    pub fn with_flight_dir(mut self, dir: PathBuf) -> Self {
        self.flight_dir = Some(dir);
        self
    }
}

/// Per-interval instruction from a [`TickCoordinator`]: what epoch the
/// tick belongs to, whether this node broadcasts it, and the sequenced
/// external publishes to fold in. Every node *builds* every tick (that
/// is what keeps a replica's database, builder, and history identical
/// to the primary's); only the node the directive marks `broadcast`
/// puts the report on the wire.
#[derive(Debug, Clone)]
pub struct TickDirective {
    /// Epoch the sealed datagram is stamped with.
    pub epoch: u64,
    /// Whether this node is (now) the primary.
    pub primary: bool,
    /// Whether this node broadcasts this interval's report.
    pub broadcast: bool,
    /// The replicated publish sequence for this interval — on the
    /// primary these are its own drained `Publish`es, on a replica the
    /// log entry's.
    pub publishes: Vec<(u64, u64)>,
    /// On promotion: the estimated session start instant, so a paced
    /// successor resumes the original cadence instead of restarting it.
    pub pace_anchor: Option<Instant>,
    /// True exactly on the tick where this node took over as primary.
    pub promoted: bool,
}

impl TickDirective {
    /// The directive an unreplicated server gives itself: epoch 0,
    /// always primary, always broadcast, own publishes.
    pub fn solo(publishes: Vec<(u64, u64)>) -> Self {
        Self {
            epoch: 0,
            primary: true,
            broadcast: true,
            publishes,
            pace_anchor: None,
            promoted: false,
        }
    }
}

/// A replication coordinator plugged into the ticker via
/// [`LiveServer::spawn_coordinated`]. The ticker calls
/// [`TickCoordinator::coordinate`] once per interval *before* building
/// the tick; on a replica the call blocks until the primary's log
/// entry for that interval arrives — or until the primary is declared
/// dead and this node promotes itself.
///
/// An `Err` of kind [`io::ErrorKind::ConnectionAborted`] from
/// `coordinate` or `after_broadcast` is the injected-crash signal: the
/// ticker severs every client connection without a `Halt` (clients see
/// the same abrupt EOF a `kill -9` produces) and returns the error.
pub trait TickCoordinator: Send {
    /// Sequences interval `interval`. `local_publishes` are the
    /// publishes this node's own clients submitted since the last
    /// tick; the primary replicates them, a replica's are discarded
    /// (replicas refuse client registration, so there are none).
    fn coordinate(
        &mut self,
        interval: u64,
        local_publishes: Vec<(u64, u64)>,
        stop: &AtomicBool,
    ) -> io::Result<TickDirective>;

    /// Called after the tick was built (and broadcast, on the
    /// primary) — the `AfterBroadcast`-style crash hook.
    fn after_broadcast(&mut self, _interval: u64) -> io::Result<()> {
        Ok(())
    }

    /// `(epoch, is_primary)` before the session starts.
    fn status(&self) -> (u64, bool);

    /// Client-facing addresses of the whole cluster in deterministic
    /// takeover order, announced to every client after `Welcome`.
    fn successors(&self) -> Vec<SocketAddr> {
        Vec::new()
    }

    /// The session ended cleanly; release replication-side resources.
    fn halted(&mut self) {}
}

/// End-of-session accounting from the server side.
pub struct LiveServerReport {
    /// Intervals actually broadcast.
    pub intervals: u64,
    /// Report datagrams sent (one per registered client per interval).
    pub datagrams_sent: u64,
    /// Total sealed report bytes broadcast.
    pub report_bytes: u64,
    /// Updates applied by the seeded update engine.
    pub updates_applied: u64,
    /// Updates ingested over TCP (`Publish`).
    pub publishes_applied: u64,
    /// Uplink queries answered.
    pub uplink_answers: u64,
    /// Lockstep only: every client's decision rows, by fleet index.
    pub rows: Vec<Vec<DecisionRow>>,
    /// The value history for post-run staleness audits, when the
    /// config enabled safety checking.
    pub history: Option<ValueHistory>,
    /// Instrumentation snapshot (`observe` feature + configured label).
    pub observe: Option<ObserveSnapshot>,
    /// The server's flight ring: the last
    /// [`LiveOptions::flight_capacity`] intervals of per-tick facts,
    /// ready to dump as NDJSON if the session ended badly.
    pub flight: FlightRecorder,
}

/// Server state guarded by one mutex: the database and everything that
/// must mutate atomically with it.
struct Core {
    db: Database,
    history: Option<ValueHistory>,
    driver: ServerDriver,
    uplink: UplinkProcessor,
    engine: UpdateEngine,
    update_rng: RngStream,
    pending_publishes: Vec<(u64, u64)>,
    /// The current report-tick time; uplink answers are stamped with
    /// it (the simulator answers interval `i`'s queries at `t_i`).
    now: sw_sim::SimTime,
    /// The current report-tick interval index; uplink feedback into the
    /// driver (quasi obligations, adaptive Method 2 counts) is indexed
    /// by it.
    interval: u64,
    updates_applied: u64,
    publishes_applied: u64,
    uplink_answers: u64,
}

/// One registered client: where its reports go and how to reach it
/// over TCP.
#[derive(Clone)]
struct Peer {
    udp: SocketAddr,
    writer: Arc<Mutex<BufWriter<TcpStream>>>,
}

#[derive(Default)]
struct Registry {
    slots: Vec<Option<Peer>>,
    registered: usize,
}

struct BarrierState {
    done: Vec<bool>,
    rows: Vec<Vec<DecisionRow>>,
}

/// Replication-facing session state the connection threads consult:
/// the current epoch and role (a replica refuses registration with
/// `Standby`), the announced successor order, and whether the session
/// has started (after which a `Hello` is a failover re-registration
/// and is greeted from the connection thread instead of the ticker).
struct HaState {
    epoch: u64,
    primary: bool,
    successors: Vec<SocketAddr>,
    started: bool,
}

/// Immutable session parameters echoed in every `Welcome`.
#[derive(Clone, Copy)]
struct SessionMeta {
    interval_ms: u64,
    intervals: u64,
    lockstep: bool,
}

struct Shared {
    core: Mutex<Core>,
    reg: Mutex<Registry>,
    reg_cv: Condvar,
    bar: Mutex<BarrierState>,
    bar_cv: Condvar,
    stop: AtomicBool,
    encode: WireEncode,
    n_items: u64,
    n_clients: usize,
    session: SessionMeta,
    ha: Mutex<HaState>,
}

/// Spawner for a live report server.
pub struct LiveServer;

/// A running server session: its bound TCP address plus the handles to
/// collect its report or shut it down early.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Option<SocketAddr>,
    shared: Arc<Shared>,
    ticker: JoinHandle<io::Result<LiveServerReport>>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The TCP address clients connect (and send `Hello`) to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics endpoint address, when
    /// [`LiveOptions::metrics_bind`] asked for one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics
    }

    /// Requests an early stop: the ticker exits at its next check and
    /// the accept loop unblocks.
    pub fn shutdown(&self) {
        self.stopper().stop();
    }

    /// A clonable, `Send` handle that can request the stop from
    /// another thread (a signal watcher, a deadline timer) while this
    /// handle blocks in [`ServerHandle::wait`].
    pub fn stopper(&self) -> Stopper {
        Stopper {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Waits for the session to finish and returns the server report.
    pub fn wait(self) -> io::Result<LiveServerReport> {
        let result = self
            .ticker
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server ticker panicked")));
        // The happy paths set `stop` on the way out, but a ticker that
        // bailed through `?` (registration timeout, stalled barrier,
        // broken pipe) did not — force it here so the accept loop's
        // poke below actually lands, and sever any client still
        // blocked on this session so *its* session errors out instead
        // of hanging.
        if !self.shared.stop.swap(true, Ordering::SeqCst) && result.is_err() {
            for peer in current_peers(&self.shared) {
                if let Ok(w) = peer.writer.lock() {
                    let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
                }
            }
        }
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        result
    }
}

/// A detached stop trigger for a running session (see
/// [`ServerHandle::stopper`]).
#[derive(Clone)]
pub struct Stopper {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Stopper {
    /// Requests the session stop; idempotent, safe from any thread.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.reg_cv.notify_all();
        self.shared.bar_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }
}

impl LiveServer {
    /// Binds an ephemeral TCP port on loopback and spawns the session
    /// threads. The session starts once all `cfg.n_clients` clients
    /// have registered, runs `opts.intervals` report intervals, then
    /// halts every client and returns its report via
    /// [`ServerHandle::wait`].
    ///
    /// Servable strategies are the broadcast ones a stateless server
    /// can run from what the live wire actually carries: the static
    /// builders (TS, AT, SIG, hybrid), adaptive TS under Method 2
    /// (its feedback is report mentions + answered uplinks, both
    /// observed server-side), and quasi-delay (obligations are keyed
    /// by answered uplinks). Rejected: adaptive Method 1 (its MHR
    /// estimate needs piggybacked local-hit times, which the live
    /// uplink frame does not carry) and the stateful baseline (§2
    /// directed messages need per-client channels this broadcast
    /// daemon does not model).
    pub fn spawn(
        cfg: CellConfig,
        strategy: Strategy,
        opts: LiveOptions,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(cfg, strategy, opts, None, None)
    }

    /// Like [`LiveServer::spawn`], but with a pre-bound listener (so a
    /// replication layer can announce the address before the session
    /// exists) and a [`TickCoordinator`] that sequences every interval
    /// across the cluster. `opts.bind` is ignored in favor of
    /// `listener`.
    pub fn spawn_coordinated(
        cfg: CellConfig,
        strategy: Strategy,
        opts: LiveOptions,
        listener: TcpListener,
        coordinator: Box<dyn TickCoordinator>,
    ) -> io::Result<ServerHandle> {
        Self::spawn_inner(cfg, strategy, opts, Some(listener), Some(coordinator))
    }

    fn spawn_inner(
        cfg: CellConfig,
        strategy: Strategy,
        opts: LiveOptions,
        listener: Option<TcpListener>,
        coordinator: Option<Box<dyn TickCoordinator>>,
    ) -> io::Result<ServerHandle> {
        if !matches!(
            strategy,
            Strategy::BroadcastTimestamps
                | Strategy::AmnesicTerminals
                | Strategy::Signatures
                | Strategy::HybridSig { .. }
                | Strategy::AdaptiveTs {
                    method: FeedbackMethod::Method2,
                    ..
                }
                | Strategy::QuasiDelay { .. }
        ) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("strategy {} is not servable live", strategy.name()),
            ));
        }
        cfg.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let params = cfg.params;
        let latency = SimDuration::from_secs(params.latency_secs);
        let retention = latency.scaled((params.k as f64 + 2.0).max(4.0));
        let protocol_seed = cfg.protocol_seed();
        let mut db_rng = protocol_seed.stream(StreamId::Database);
        let db = Database::new(params.n_items, |_| db_rng.next_u64(), retention);
        let history = cfg
            .check_safety
            .then(|| ValueHistory::new(params.n_items, |i| db.value(i)));
        let driver = ServerDriver::new(strategy, &params, protocol_seed, &db, cfg.n_clients);
        let mut update_rng = protocol_seed.stream(StreamId::Updates);
        let engine = UpdateEngine::new(params.n_items, params.mu, &mut update_rng);
        let encode = WireEncode::new(
            params.n_items,
            params.timestamp_bits,
            params.query_bits,
            params.answer_bits,
        );

        let listener = match listener {
            Some(l) => l,
            None => TcpListener::bind(opts.bind)?,
        };
        let addr = listener.local_addr()?;
        let n_clients = cfg.n_clients;
        let (initial_epoch, initial_primary) = match coordinator.as_deref() {
            Some(c) => c.status(),
            None => (0, true),
        };
        let session = SessionMeta {
            interval_ms: match opts.pace {
                Pace::Lockstep => 0,
                Pace::Paced { interval_ms } => interval_ms,
            },
            intervals: opts.intervals,
            lockstep: matches!(opts.pace, Pace::Lockstep),
        };
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                db,
                history,
                driver,
                uplink: UplinkProcessor::with_universe(params.n_items),
                engine,
                update_rng,
                pending_publishes: Vec::new(),
                now: sw_sim::SimTime::from_secs(0.0),
                interval: 0,
                updates_applied: 0,
                publishes_applied: 0,
                uplink_answers: 0,
            }),
            reg: Mutex::new(Registry {
                slots: vec![None; n_clients],
                registered: 0,
            }),
            reg_cv: Condvar::new(),
            bar: Mutex::new(BarrierState {
                done: vec![false; n_clients],
                rows: vec![Vec::new(); n_clients],
            }),
            bar_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            encode,
            n_items: params.n_items,
            n_clients,
            session,
            ha: Mutex::new(HaState {
                epoch: initial_epoch,
                primary: initial_primary,
                successors: coordinator
                    .as_deref()
                    .map(|c| c.successors())
                    .unwrap_or_default(),
                started: false,
            }),
        });

        // The metrics plane, when asked for: the exporter thread serves
        // immutable views the ticker publishes once per interval. The
        // exporter handle moves into the ticker thread so the endpoint
        // lives exactly as long as the session.
        let metrics = match opts.metrics_bind {
            Some(bind) => {
                let hub = MetricsHub::new();
                let exporter = MetricsExporter::bind(bind, Arc::clone(&hub))?;
                Some((hub, exporter))
            }
            None => None,
        };
        let metrics_addr = metrics.as_ref().map(|(_, e)| e.addr());

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };
        let ticker = {
            let shared = Arc::clone(&shared);
            let obs = match &cfg.observe {
                Some(label) => Recorder::enabled(format!("{label}.server")),
                None => Recorder::disabled(),
            };
            let strategy_name = strategy.name();
            thread::spawn(move || {
                ticker_loop(shared, latency, opts, obs, strategy_name, metrics, coordinator)
            })
        };
        Ok(ServerHandle {
            addr,
            metrics: metrics_addr,
            shared,
            ticker,
            accept,
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Connection threads exit when their client hangs up; a
        // straggler at shutdown holds only an Arc.
        thread::spawn(move || {
            let _ = conn_loop(stream, shared);
        });
    }
}

/// Services one client connection: registration, uplink answers,
/// publish ingestion, and barrier rows.
fn conn_loop(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let peer_ip: IpAddr = stream.peer_addr()?.ip();
    let reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    let mut reader = BufReader::new(reader);
    let mut my_index: Option<usize> = None;
    // A read error is a hangup (or garbage): drop the connection.
    while let Ok(msg) = Msg::read_from(&mut reader) {
        match msg {
            Msg::Hello { index, udp_port } => {
                let (primary, epoch, started, successors) = {
                    let ha = shared.ha.lock().expect("ha lock");
                    (ha.primary, ha.epoch, ha.started, ha.successors.clone())
                };
                if !primary {
                    // A replica serves nobody: refuse with the current
                    // epoch so the client walks its successor list.
                    Msg::Standby { epoch }
                        .write_to(&mut *writer.lock().expect("writer lock"))?;
                    continue;
                }
                let idx = index as usize;
                if idx >= shared.n_clients {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("bad client index {idx}"),
                    ));
                }
                if started {
                    // Mid-session join: the ticker greeted the original
                    // fleet already — greet this one here, *before* its
                    // slot becomes visible, or the ticker could slip a
                    // `Start` in ahead of the `Welcome`.
                    greet(&writer, shared.session, &successors)?;
                }
                {
                    let mut reg = shared.reg.lock().expect("registry lock");
                    // Before the session starts a duplicate index is a
                    // config error; after, it is a failover
                    // re-registration replacing a dead connection.
                    if !started && reg.slots[idx].is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("duplicate client index {idx}"),
                        ));
                    }
                    if reg.slots[idx].is_none() {
                        reg.registered += 1;
                    }
                    reg.slots[idx] = Some(Peer {
                        udp: SocketAddr::new(peer_ip, udp_port),
                        writer: Arc::clone(&writer),
                    });
                    my_index = Some(idx);
                    shared.reg_cv.notify_all();
                }
            }
            Msg::Query { frame } => {
                let (_, inner) = open_frame(&frame)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let decoded = shared
                    .encode
                    .deserialize(inner)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let FramePayload::UplinkQuery { item, .. } = decoded.payload else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "expected an uplink query frame",
                    ));
                };
                let answer = {
                    let mut core = shared.core.lock().expect("core lock");
                    let core = &mut *core;
                    let answer = core.uplink.answer(&core.db, item, core.now, None);
                    // The same feedback the simulator's exchange gives
                    // the server side: quasi registers the fresh
                    // obligation, adaptive Method 2 counts the query.
                    // (No piggyback: the live frame does not carry it,
                    // which is why Method 1 is not servable.)
                    core.driver
                        .note_uplink(0, item, core.interval, core.now, None);
                    core.uplink_answers += 1;
                    answer
                };
                let payload = FramePayload::QueryAnswer {
                    item: answer.item,
                    value: answer.value,
                    ts_micros: time_to_micros(answer.timestamp),
                };
                let epoch = shared.ha.lock().expect("ha lock").epoch;
                let datagram = seal_frame(epoch, shared.encode.serialize_payload(&payload));
                Msg::Answer { frame: datagram }
                    .write_to(&mut *writer.lock().expect("writer lock"))?;
            }
            Msg::Publish { item, value } => {
                if item >= shared.n_items {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("publish for item {item} outside the universe"),
                    ));
                }
                let mut core = shared.core.lock().expect("core lock");
                core.pending_publishes.push((item, value));
            }
            Msg::Done { row } => {
                let Some(idx) = my_index else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "Done before Hello",
                    ));
                };
                let mut bar = shared.bar.lock().expect("barrier lock");
                bar.rows[idx].push(row);
                bar.done[idx] = true;
                shared.bar_cv.notify_all();
            }
            Msg::Bye => break,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected client message {other:?}"),
                ))
            }
        }
    }
    Ok(())
}

/// Advances one tick's worth of simulated time on the database: seeded
/// update-engine arrivals in `(from, t_i]`, then the tick's sequenced
/// external publishes stamped at `t_i`, then the report build. Every
/// replicated node runs this with the *same* publish sequence, which
/// is what keeps database, builder, and history identical clusterwide.
fn build_tick(
    core: &mut Core,
    i: u64,
    from: sw_sim::SimTime,
    t_i: sw_sim::SimTime,
    publishes: &[(u64, u64)],
) -> FramePayload {
    let recs = core
        .engine
        .advance(&mut core.db, from, t_i, &mut core.update_rng);
    for rec in &recs {
        core.driver.on_update(rec);
        if let Some(h) = core.history.as_mut() {
            h.record(rec);
        }
    }
    core.updates_applied += recs.len() as u64;
    for &(item, value) in publishes {
        let rec = core.db.apply_update(item, value, t_i);
        core.driver.on_update(&rec);
        if let Some(h) = core.history.as_mut() {
            h.record(&rec);
        }
        core.publishes_applied += 1;
    }
    let payload = core.driver.build(i, t_i, &core.db);
    core.db.prune_log(t_i);
    core.now = t_i;
    core.interval = i;
    payload
}

/// Sends `Welcome` then `Successors` — the fixed greeting pair every
/// registered client receives, whether at session start (from the
/// ticker) or on a failover re-registration (from the conn thread).
fn greet(
    writer: &Arc<Mutex<BufWriter<TcpStream>>>,
    session: SessionMeta,
    successors: &[SocketAddr],
) -> io::Result<()> {
    let mut w = writer.lock().expect("writer lock");
    Msg::Welcome {
        interval_ms: session.interval_ms,
        intervals: session.intervals,
        lockstep: session.lockstep,
    }
    .write_to(&mut *w)?;
    Msg::Successors {
        peers: successors.to_vec(),
    }
    .write_to(&mut *w)
}

/// Snapshot of the currently registered peers. Re-read every interval
/// (not captured once): a failover re-registration must reach the next
/// fanout immediately.
fn current_peers(shared: &Shared) -> Vec<Peer> {
    shared
        .reg
        .lock()
        .expect("registry lock")
        .slots
        .iter()
        .flatten()
        .cloned()
        .collect()
}

/// Blocks until all `n_clients` slots are registered (or stop/timeout).
fn wait_for_registration(shared: &Shared, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    let mut reg = shared.reg.lock().expect("registry lock");
    while reg.registered < shared.n_clients {
        if shared.stop.load(Ordering::SeqCst) {
            return Err(io::Error::other("stopped before registration completed"));
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "{}/{} clients registered within {timeout:?}",
                    reg.registered, shared.n_clients
                ),
            ));
        }
        let (guard, _) = shared
            .reg_cv
            .wait_timeout(reg, Duration::from_millis(50))
            .expect("registry lock");
        reg = guard;
    }
    Ok(())
}

fn ticker_loop(
    shared: Arc<Shared>,
    latency: SimDuration,
    opts: LiveOptions,
    mut obs: Recorder,
    strategy_name: &'static str,
    metrics: Option<(Arc<MetricsHub>, MetricsExporter)>,
    mut coordinator: Option<Box<dyn TickCoordinator>>,
) -> io::Result<LiveServerReport> {
    let (mut epoch, mut is_primary) = match coordinator.as_deref() {
        Some(c) => c.status(),
        None => (0, true),
    };
    // Phase 1: the primary waits for the full fleet; a replica serves
    // nobody yet and begins its (silent) cadence immediately.
    if is_primary {
        wait_for_registration(&shared, opts.registration_timeout)?;
    }
    let lockstep = shared.session.lockstep;
    // Snapshot the fleet to greet *before* flipping `started`, so a
    // registration racing the flip is greeted exactly once (by its
    // conn thread, which only greets after `started` is set).
    let greeted = current_peers(&shared);
    let successors = {
        let mut ha = shared.ha.lock().expect("ha lock");
        ha.started = true;
        ha.successors.clone()
    };
    for peer in &greeted {
        greet(&peer.writer, shared.session, &successors)?;
    }
    let mut t0 = Instant::now();
    let udp = UdpSocket::bind(("0.0.0.0", 0))?;
    let mut clock = IntervalClock::new(latency);
    let mut datagrams_sent = 0u64;
    let mut report_bytes = 0u64;
    let mut intervals_run = 0u64;
    if obs.is_enabled() {
        obs.series_schema(&["report_bits", "updates", "answers"]);
        obs.add("clients_registered", greeted.len() as u64);
    }
    let mut prev_answers = 0u64;
    let mut prev_updates = 0u64;
    let mut flight = FlightRecorder::new(opts.flight_capacity);
    // Publishes one immutable view of this tick for scrapers; gauges
    // cover the uninstrumented build, the attached recorder snapshot
    // adds the full counter/histogram plane when `observe` is on.
    #[allow(clippy::too_many_arguments)]
    let publish_tick = |i: u64,
                            obs: &Recorder,
                            registered: usize,
                            epoch: u64,
                            primary: bool,
                            queue_depth: usize,
                            build: Duration,
                            fanout: Duration,
                            datagrams: u64,
                            bytes: u64,
                            answers: u64,
                            updates: u64| {
        let Some((hub, _)) = metrics.as_ref() else {
            return;
        };
        hub.publish(
            Published::at(i)
                .label("role", "server")
                .label("strategy", strategy_name)
                .gauge("mu_registered", registered as f64)
                .gauge("ha_epoch", epoch as f64)
                .gauge("ha_role", if primary { 1.0 } else { 0.0 })
                .gauge("uplink_queue_depth", queue_depth as f64)
                .gauge("report_build_seconds", build.as_secs_f64())
                .gauge("udp_fanout_seconds", fanout.as_secs_f64())
                .gauge("datagrams_sent", datagrams as f64)
                .gauge("report_bytes", bytes as f64)
                .gauge("uplink_answers", answers as f64)
                .gauge("updates_applied", updates as f64)
                .snapshot(obs.snapshot()),
        );
    };

    // Phase 2: the broadcast cadence. Every node builds every tick;
    // only the directive's broadcaster puts it on the wire.
    let mut crash_err: Option<io::Error> = None;
    'run: for _ in 0..opts.intervals {
        let (i, t_i) = clock.tick();
        let from = clock.report_time(i - 1);
        if is_primary {
            if let Pace::Paced { interval_ms } = opts.pace {
                let due = t0 + Duration::from_millis(interval_ms) * i as u32;
                if !paced_sleep_until(&shared, due) {
                    break 'run;
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let local: Vec<(u64, u64)> = {
            let mut core = shared.core.lock().expect("core lock");
            core.pending_publishes.drain(..).collect()
        };
        let dir = match coordinator.as_deref_mut() {
            Some(c) => match c.coordinate(i, local, &shared.stop) {
                Ok(d) => d,
                Err(e) => {
                    crash_err = Some(e);
                    break 'run;
                }
            },
            None => TickDirective::solo(local),
        };
        epoch = dir.epoch;
        is_primary = dir.primary;
        {
            let mut ha = shared.ha.lock().expect("ha lock");
            ha.epoch = epoch;
            ha.primary = is_primary;
        }
        if dir.promoted {
            // Takeover: this replica is now the broadcaster. Record
            // it, dump the flight ring for the post-mortem, adopt the
            // original cadence, and (lockstep) wait for the fleet to
            // re-register — nobody can answer a Start before that.
            flight.push(i, "takeover", &[("epoch", Value::U64(epoch))]);
            if let Some(dir_path) = opts.flight_dir.as_deref() {
                let path = dir_path.join("sw-flight-takeover.ndjson");
                let reason = format!("takeover at interval {i}, epoch {epoch}");
                match flight.dump(&path, &reason) {
                    Ok(n) => eprintln!("sw-live: takeover flight dump: {} ({n} B)", path.display()),
                    Err(e) => eprintln!("sw-live: takeover flight dump failed: {e}"),
                }
            }
            if let Some(anchor) = dir.pace_anchor {
                t0 = anchor;
            }
            if lockstep {
                wait_for_registration(&shared, opts.registration_timeout)?;
            } else if let Pace::Paced { interval_ms } = opts.pace {
                let due = t0 + Duration::from_millis(interval_ms) * i as u32;
                if !paced_sleep_until(&shared, due) {
                    break 'run;
                }
            }
        }
        let build_started = Instant::now();
        let (payload, queue_depth, answers_now, updates_now) = {
            let _span = obs.span("report_build");
            let mut core = shared.core.lock().expect("core lock");
            let depth = dir.publishes.len();
            let p = build_tick(&mut core, i, from, t_i, &dir.publishes);
            (p, depth, core.uplink_answers, core.updates_applied)
        };
        let build_elapsed = build_started.elapsed();
        let peers = current_peers(&shared);
        let mut fanout_elapsed = Duration::ZERO;
        if dir.broadcast {
            let datagram = {
                let _span = obs.span("report_encode");
                seal_frame(epoch, shared.encode.serialize_payload(&payload))
            };
            let fanout_started = Instant::now();
            {
                let _span = obs.span("udp_send");
                for peer in &peers {
                    if udp.send_to(&datagram, peer.udp).is_ok() {
                        datagrams_sent += 1;
                    }
                }
            }
            fanout_elapsed = fanout_started.elapsed();
            report_bytes += datagram.len() as u64;
            if obs.is_enabled() {
                obs.add("reports_built", 1);
                obs.series_row(
                    i,
                    &[
                        datagram.len() as u64 * 8,
                        updates_now - prev_updates,
                        answers_now - prev_answers,
                    ],
                );
            }
            flight.push(
                i,
                "report",
                &[
                    ("bytes", Value::U64(datagram.len() as u64)),
                    ("updates", Value::U64(updates_now - prev_updates)),
                    ("answers", Value::U64(answers_now - prev_answers)),
                    ("queue_depth", Value::U64(queue_depth as u64)),
                    ("build_us", Value::U64(build_elapsed.as_micros() as u64)),
                    ("fanout_us", Value::U64(fanout_elapsed.as_micros() as u64)),
                ],
            );
        }
        intervals_run = i;
        prev_updates = updates_now;
        prev_answers = answers_now;
        publish_tick(
            i,
            &obs,
            peers.len(),
            epoch,
            is_primary,
            queue_depth,
            build_elapsed,
            fanout_elapsed,
            datagrams_sent,
            report_bytes,
            answers_now,
            updates_now,
        );
        if let Some(c) = coordinator.as_deref_mut() {
            if let Err(e) = c.after_broadcast(i) {
                crash_err = Some(e);
                break 'run;
            }
        }

        if lockstep && dir.broadcast {
            for peer in &peers {
                Msg::Start { interval: i }
                    .write_to(&mut *peer.writer.lock().expect("writer lock"))?;
            }
            let deadline = Instant::now() + Duration::from_secs(60);
            let mut bar = shared.bar.lock().expect("barrier lock");
            while !bar.done.iter().all(|&d| d) {
                if shared.stop.load(Ordering::SeqCst) {
                    break 'run;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("lockstep barrier stalled at interval {i}"),
                    ));
                }
                let (guard, _) = shared
                    .bar_cv
                    .wait_timeout(bar, Duration::from_millis(50))
                    .expect("barrier lock");
                bar = guard;
            }
            bar.done.iter_mut().for_each(|d| *d = false);
        }

        // Adaptive evaluation-period boundary, after the barrier (or
        // this tick's paced window) so the period's uplink feedback is
        // complete. Per-item counts are order-independent within an
        // interval, so lockstep sessions close periods exactly as the
        // simulator does regardless of uplink arrival order.
        {
            let mut core = shared.core.lock().expect("core lock");
            let core = &mut *core;
            if let Some((default_k, exceptions)) =
                core.driver
                    .end_period_if_due(i, &mut core.uplink, &mut core.db, latency)
            {
                if obs.is_enabled() {
                    obs.event(
                        i,
                        "adaptive_period",
                        &[
                            ("default_k", Value::U64(default_k as u64)),
                            ("exceptions", Value::U64(exceptions as u64)),
                        ],
                    );
                }
                flight.push(
                    i,
                    "adaptive_period",
                    &[
                        ("default_k", Value::U64(default_k as u64)),
                        ("exceptions", Value::U64(exceptions as u64)),
                    ],
                );
            }
        }
    }

    if let Some(e) = crash_err {
        // An injected crash: die abruptly. No Halt, no grace — sever
        // every client connection so the fleet sees the same EOF a
        // `kill -9` produces, and leave the coordinator's links to the
        // coordinator (it closed them before returning the error).
        shared.stop.store(true, Ordering::SeqCst);
        {
            let mut ha = shared.ha.lock().expect("ha lock");
            ha.primary = false;
        }
        for peer in current_peers(&shared) {
            if let Ok(w) = peer.writer.lock() {
                let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some((_, mut exporter)) = metrics {
            exporter.shutdown();
        }
        return Err(e);
    }

    // Phase 3: halt. Paced clients may still be mid-interval; give
    // them one interval of grace to finish their uplink exchanges
    // before the halt lands.
    if let Pace::Paced { interval_ms } = opts.pace {
        thread::sleep(Duration::from_millis(interval_ms));
    }
    for peer in current_peers(&shared) {
        let _ = Msg::Halt.write_to(&mut *peer.writer.lock().expect("writer lock"));
    }
    shared.stop.store(true, Ordering::SeqCst);
    if let Some(c) = coordinator.as_deref_mut() {
        c.halted();
    }

    let rows = {
        let mut bar = shared.bar.lock().expect("barrier lock");
        std::mem::take(&mut bar.rows)
    };
    let registered = shared.reg.lock().expect("registry lock").registered;
    let mut core = shared.core.lock().expect("core lock");
    if obs.is_enabled() {
        obs.add("updates_applied", core.updates_applied);
        obs.add("publishes_applied", core.publishes_applied);
        obs.add("uplink_answers", core.uplink_answers);
        obs.add("report_bytes", report_bytes);
    }
    // One last view so a scraper that polls right at session end sees
    // the final totals, then tear the endpoint down with the session.
    publish_tick(
        intervals_run,
        &obs,
        registered,
        epoch,
        is_primary,
        core.pending_publishes.len(),
        Duration::ZERO,
        Duration::ZERO,
        datagrams_sent,
        report_bytes,
        core.uplink_answers,
        core.updates_applied,
    );
    if let Some((_, mut exporter)) = metrics {
        exporter.shutdown();
    }
    Ok(LiveServerReport {
        intervals: intervals_run,
        datagrams_sent,
        report_bytes,
        updates_applied: core.updates_applied,
        publishes_applied: core.publishes_applied,
        uplink_answers: core.uplink_answers,
        rows,
        history: core.history.take(),
        observe: obs.snapshot(),
        flight,
    })
}

/// Sleeps in short stop-pollable slices until `due`. Returns `false`
/// if the session was stopped while waiting.
fn paced_sleep_until(shared: &Shared, due: Instant) -> bool {
    while let Some(remaining) = due
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
    {
        if shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        thread::sleep(remaining.min(Duration::from_millis(5)));
    }
    true
}
