//! Sim-vs-live conformance: the simulator as the daemon's executable
//! spec.
//!
//! Drive `CellSimulation` and the live stack (a lockstep `sw-serve`
//! session plus one [`run_mu`] thread per client, over real loopback
//! sockets) from the same [`CellConfig`] and assert that every
//! client's per-interval decision sequence — awake/heard flags,
//! queries, hits, misses, invalidations, whole-cache drops — is
//! **byte-identical** between the two. The comparison is over the
//! fixed-width [`DecisionRow`] encodings, so "identical" means equal
//! byte strings, not approximately-equal statistics.
//!
//! Preconditions for the identity (checked, not assumed):
//!
//! - a static broadcast strategy (TS, AT, SIG, hybrid) — the
//!   stateless-server shapes the live daemon can run;
//! - zero channel overflow in the simulated run (`overflow_exchanges
//!   == 0`): the live TCP uplink has no per-interval bit budget, so a
//!   saturated simulated interval would defer answers the live stack
//!   delivers immediately;
//! - no uplink fault injection (the live wire models downlink loss
//!   and corruption; uplink TCP is reliable by construction).

use std::io;
use std::net::SocketAddr;
use std::thread;

use sleepers::{CellConfig, CellSimulation, SimulationError, Strategy};
use sw_client::MuStats;
use sw_query::QueryStats;

use crate::mu::{run_mu, MuOptions};
use crate::proto::{encode_rows, DecisionRow};
use crate::server::{LiveOptions, LiveServer};

/// Why a conformance check could not produce (or did not produce) the
/// identity.
#[derive(Debug)]
pub enum ConformanceError {
    /// The simulated reference run failed.
    Sim(SimulationError),
    /// The live session failed at the socket layer.
    Io(io::Error),
    /// The simulated run saturated its uplink channel; the comparison
    /// is undefined (the live stack has no interval bit budget).
    Saturated {
        /// Deferred exchanges in the simulated run.
        overflow_exchanges: u64,
    },
    /// The logs differ.
    Mismatch {
        /// Client whose logs first diverged.
        client: usize,
        /// First differing interval.
        interval: u64,
        /// The simulator's row.
        sim: Box<DecisionRow>,
        /// The live stack's row.
        live: Box<DecisionRow>,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "simulated reference run failed: {e}"),
            Self::Io(e) => write!(f, "live session failed: {e}"),
            Self::Saturated { overflow_exchanges } => write!(
                f,
                "simulated run deferred {overflow_exchanges} uplink exchanges; \
                 shrink the fleet or widen the bandwidth for a valid comparison"
            ),
            Self::Mismatch {
                client,
                interval,
                sim,
                live,
            } => write!(
                f,
                "client {client} diverged at interval {interval}: sim {sim:?}, live {live:?}"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<SimulationError> for ConformanceError {
    fn from(e: SimulationError) -> Self {
        Self::Sim(e)
    }
}

impl From<io::Error> for ConformanceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Both decision logs of a passed conformance run, for further
/// inspection (they are equal, per [`check_conformance`]).
pub struct Conformance {
    /// Per-client rows from the simulated run.
    pub sim: Vec<Vec<DecisionRow>>,
    /// Per-client rows from the live run.
    pub live: Vec<Vec<DecisionRow>>,
}

fn row_from_deltas(
    i: u64,
    prev: &MuStats,
    s: &MuStats,
    prev_q: &QueryStats,
    q: &QueryStats,
) -> DecisionRow {
    if s.intervals_awake == prev.intervals_awake {
        return DecisionRow {
            interval: i,
            ..DecisionRow::default()
        };
    }
    DecisionRow {
        interval: i,
        awake: true,
        heard: s.reports_missed == prev.reports_missed,
        queries: s.queries_posed - prev.queries_posed,
        hits: s.hit_events - prev.hit_events,
        misses: s.miss_events - prev.miss_events,
        invalidated: s.items_invalidated - prev.items_invalidated,
        drops: s.cache_drops - prev.cache_drops,
        qhits: q.hits - prev_q.hits,
        qmisses: q.misses - prev_q.misses,
        qcommits: q.txn_commits - prev_q.txn_commits,
        qaborts: q.txn_aborts - prev_q.txn_aborts,
        evictions: s.evictions - prev.evictions,
        capacity_misses: s.capacity_misses - prev.capacity_misses,
    }
}

/// Runs the reference simulation interval by interval and extracts
/// each client's decision row per interval from its stat deltas.
pub fn sim_decision_log(
    cfg: &CellConfig,
    strategy: Strategy,
    intervals: u64,
) -> Result<Vec<Vec<DecisionRow>>, ConformanceError> {
    let mut sim = CellSimulation::new(cfg.clone(), strategy)?;
    let n = cfg.n_clients;
    let mut prev: Vec<MuStats> = (0..n).map(|idx| sim.client_stats(idx)).collect();
    let mut prev_q: Vec<QueryStats> = (0..n)
        .map(|idx| sim.client_query_stats(idx).unwrap_or_default())
        .collect();
    let mut rows: Vec<Vec<DecisionRow>> = vec![Vec::with_capacity(intervals as usize); n];
    for i in 1..=intervals {
        sim.step()?;
        for (idx, log) in rows.iter_mut().enumerate() {
            let s = sim.client_stats(idx);
            let q = sim.client_query_stats(idx).unwrap_or_default();
            log.push(row_from_deltas(i, &prev[idx], &s, &prev_q[idx], &q));
            prev[idx] = s;
            prev_q[idx] = q;
        }
    }
    let report = sim.report();
    if report.overflow_exchanges > 0 {
        return Err(ConformanceError::Saturated {
            overflow_exchanges: report.overflow_exchanges,
        });
    }
    Ok(rows)
}

/// Runs the same configuration through the live stack — a lockstep
/// server plus one client thread per fleet index, over real loopback
/// TCP/UDP — and collects each client's decision rows.
pub fn live_decision_log(
    cfg: &CellConfig,
    strategy: Strategy,
    intervals: u64,
) -> Result<Vec<Vec<DecisionRow>>, ConformanceError> {
    live_decision_log_with(
        cfg,
        strategy,
        LiveOptions::lockstep(intervals),
        MuOptions::default(),
        |_| {},
    )
}

/// [`live_decision_log`] with explicit server/client options. Must be
/// a lockstep session (the barrier is what makes the rows
/// deterministic). `on_spawn` runs once the server is up, receiving
/// its metrics address when [`LiveOptions::metrics_bind`] armed one —
/// the hook a test uses to scrape `/metrics` *while* the conformance
/// session runs.
pub fn live_decision_log_with(
    cfg: &CellConfig,
    strategy: Strategy,
    opts: LiveOptions,
    mu_opts: MuOptions,
    on_spawn: impl FnOnce(Option<SocketAddr>),
) -> Result<Vec<Vec<DecisionRow>>, ConformanceError> {
    let handle = LiveServer::spawn(cfg.clone(), strategy, opts)?;
    let addr = handle.addr();
    on_spawn(handle.metrics_addr());
    let workers: Vec<_> = (0..cfg.n_clients)
        .map(|idx| {
            let cfg = cfg.clone();
            let mu_opts = mu_opts.clone();
            thread::spawn(move || run_mu(addr, &cfg, strategy, idx, mu_opts))
        })
        .collect();
    let mut rows = Vec::with_capacity(cfg.n_clients);
    let mut first_err: Option<io::Error> = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(report)) => rows.push(report.rows),
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert_with(|| io::Error::other("client thread panicked"));
            }
        }
    }
    if let Some(e) = first_err {
        handle.shutdown();
        let _ = handle.wait();
        return Err(e.into());
    }
    let server = handle.wait()?;
    // Cross-check: the rows the server collected over the barrier are
    // the same bytes the clients kept locally.
    for (idx, local) in rows.iter().enumerate() {
        if encode_rows(local) != encode_rows(&server.rows[idx]) {
            return Err(ConformanceError::Io(io::Error::other(format!(
                "client {idx}'s barrier rows diverge from its local rows"
            ))));
        }
    }
    Ok(rows)
}

/// The headline check: same seed, same update schedule ⇒ byte-identical
/// per-client decision logs between `CellSimulation` and the live
/// stack.
pub fn check_conformance(
    cfg: &CellConfig,
    strategy: Strategy,
    intervals: u64,
) -> Result<Conformance, ConformanceError> {
    let sim = sim_decision_log(cfg, strategy, intervals)?;
    let live = live_decision_log(cfg, strategy, intervals)?;
    for (client, (s_rows, l_rows)) in sim.iter().zip(&live).enumerate() {
        if encode_rows(s_rows) == encode_rows(l_rows) {
            continue;
        }
        let (sim_row, live_row) = s_rows
            .iter()
            .zip(l_rows)
            .find(|(a, b)| a != b)
            .map(|(a, b)| (*a, *b))
            .unwrap_or_default();
        return Err(ConformanceError::Mismatch {
            client,
            interval: sim_row.interval,
            sim: Box::new(sim_row),
            live: Box::new(live_row),
        });
    }
    Ok(Conformance { sim, live })
}
