//! The TCP control protocol between `sw-serve` and its clients.
//!
//! Everything that is *not* the broadcast report rides a plain
//! length-prefixed TCP connection: client registration, uplink query
//! exchanges (the paper's point-to-point fallback channel, §2), update
//! ingestion, and the lockstep barrier the conformance harness uses to
//! replace wall-clock pacing with deterministic turn-taking.
//!
//! Message layout: `u32` big-endian body length, then a one-byte tag,
//! then the tag-specific body. Uplink queries and answers carry a
//! *sealed wire frame* — the same checksummed bytes
//! ([`sw_wireless::frame::seal_frame`]) the simulator charges to the
//! channel — so the codec under test on the UDP path is also the codec
//! on the TCP path.

use std::io::{self, Read, Write};
use std::net::SocketAddr;

use sw_wireless::frame::checksum64;

/// Hard cap on a single control message, far above any real frame
/// (a full 10⁶-item report is ~8 MB; queries and rows are tens of
/// bytes). Guards the length prefix against garbage peers.
pub const MAX_MESSAGE: usize = 64 << 20;

/// One client's decisions for one broadcast interval — the unit of the
/// sim-vs-live conformance comparison. Every counter is the delta of
/// the corresponding [`sw_client::MuStats`] field across the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecisionRow {
    /// The broadcast interval index `i` (report time `T_i = i·L`).
    pub interval: u64,
    /// Whether the unit was awake for this interval.
    pub awake: bool,
    /// Whether an intact report was heard (always `false` when asleep).
    pub heard: bool,
    /// Queries posed during the interval.
    pub queries: u64,
    /// Query events answered from cache at the report.
    pub hits: u64,
    /// Query events that went uplink.
    pub misses: u64,
    /// Items invalidated by the report.
    pub invalidated: u64,
    /// Whole-cache drops (AT disconnection rule, TS window overrun).
    pub drops: u64,
    /// Query-plane results served from the result cache (zero unless
    /// the session runs a query plane; the delta of
    /// [`sw_query::QueryStats::hits`]).
    pub qhits: u64,
    /// Query-plane misses (materialization fetches went uplink).
    pub qmisses: u64,
    /// Multi-item transactional reads committed this interval.
    pub qcommits: u64,
    /// Multi-item transactional reads aborted this interval.
    pub qaborts: u64,
    /// Entries evicted by the replacement policy (zero unless the
    /// session runs a bounded cache; the delta of
    /// [`sw_client::MuStats::evictions`]).
    pub evictions: u64,
    /// Misses whose item had been evicted while still fresh — the
    /// capacity-attributable share of the miss count.
    pub capacity_misses: u64,
}

impl DecisionRow {
    /// Serialized width: interval + flags byte + eleven counters.
    pub const WIRE_LEN: usize = 8 + 1 + 11 * 8;

    /// Fixed-width big-endian encoding; decision logs are compared as
    /// the concatenation of these.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.interval.to_be_bytes());
        out[8] = (self.awake as u8) | ((self.heard as u8) << 1);
        for (slot, v) in [
            self.queries,
            self.hits,
            self.misses,
            self.invalidated,
            self.drops,
            self.qhits,
            self.qmisses,
            self.qcommits,
            self.qaborts,
            self.evictions,
            self.capacity_misses,
        ]
        .into_iter()
        .enumerate()
        {
            out[9 + slot * 8..17 + slot * 8].copy_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Inverse of [`DecisionRow::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> io::Result<Self> {
        if b.len() != Self::WIRE_LEN {
            return Err(bad_data("decision row length"));
        }
        let word = |i: usize| u64::from_be_bytes(b[i..i + 8].try_into().unwrap());
        if b[8] & !0b11 != 0 {
            return Err(bad_data("decision row flags"));
        }
        Ok(Self {
            interval: word(0),
            awake: b[8] & 1 != 0,
            heard: b[8] & 2 != 0,
            queries: word(9),
            hits: word(17),
            misses: word(25),
            invalidated: word(33),
            drops: word(41),
            qhits: word(49),
            qmisses: word(57),
            qcommits: word(65),
            qaborts: word(73),
            evictions: word(81),
            capacity_misses: word(89),
        })
    }
}

/// Concatenates rows into the byte string two logs are compared as.
pub fn encode_rows(rows: &[DecisionRow]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.len() * DecisionRow::WIRE_LEN);
    for r in rows {
        out.extend_from_slice(&r.to_bytes());
    }
    out
}

/// A control message, either direction. Tags `0x0_` flow client →
/// server, `0x8_`/`0x9_` server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Registration: the client's fleet index and the UDP port it
    /// listens for reports on (the server targets `peer_ip:udp_port`).
    Hello {
        /// Index into the configured fleet, `0..n_clients`.
        index: u32,
        /// Client-bound UDP report port.
        udp_port: u16,
    },
    /// An uplink query: a sealed `FramePayload::UplinkQuery` frame.
    Query {
        /// Sealed datagram bytes (frame + checksum trailer).
        frame: Vec<u8>,
    },
    /// An external update to ingest: the daemon path for feeding the
    /// database from outside (applied at the next report tick).
    Publish {
        /// Item to update.
        item: u64,
        /// New value.
        value: u64,
    },
    /// Lockstep barrier: the client finished the named interval; the
    /// row is its decision record for the conformance log.
    Done {
        /// The finished interval's decision record.
        row: DecisionRow,
    },
    /// Clean client departure.
    Bye,
    /// Registration accepted; session parameters.
    Welcome {
        /// Real milliseconds between report broadcasts (paced mode).
        interval_ms: u64,
        /// Total broadcast intervals the session will run.
        intervals: u64,
        /// `true`: TCP barrier pacing; `false`: wall-clock pacing.
        lockstep: bool,
    },
    /// An uplink answer: a sealed `FramePayload::QueryAnswer` frame.
    Answer {
        /// Sealed datagram bytes (frame + checksum trailer).
        frame: Vec<u8>,
    },
    /// Lockstep barrier: interval `interval`'s report has been
    /// broadcast; process it and reply [`Msg::Done`].
    Start {
        /// The interval to process.
        interval: u64,
    },
    /// Session over; the client should drain and disconnect.
    Halt,
    /// Sent right after [`Msg::Welcome`]: the announced successor
    /// order — client-facing addresses of every cluster node in
    /// deterministic takeover order (lowest node id first). Empty for
    /// an unreplicated server. A client keeps this list so it knows
    /// where to re-register when its current server dies.
    Successors {
        /// Client-facing TCP addresses, takeover order.
        peers: Vec<SocketAddr>,
    },
    /// Registration refused because this node is currently a replica:
    /// it applies the log silently and does not serve clients. The
    /// client should try the next address in its successor list.
    Standby {
        /// The refusing node's current primary epoch.
        epoch: u64,
    },
    /// Replication link handshake (peer ↔ peer): sender's node id,
    /// current epoch, and the last log interval it has applied —
    /// the receiver (if primary) replays everything newer.
    RepHello {
        /// Sender's cluster node id.
        node: u32,
        /// Sender's current epoch.
        epoch: u64,
        /// Highest log interval the sender has applied (0 = none).
        last_applied: u64,
    },
    /// Primary → replica: one replicated log entry — the externally
    /// `Publish`ed updates to fold into the named interval's report
    /// tick. The seeded update engine needs no replication (every
    /// node replays it from the shared seed); only outside writes do.
    RepAppend {
        /// Epoch of the primary that sequenced this entry.
        epoch: u64,
        /// Broadcast interval the entry belongs to.
        interval: u64,
        /// `(item, value)` pairs applied at that interval's tick.
        publishes: Vec<(u64, u64)>,
    },
    /// Replica → primary: the named entry is durably applied.
    RepAck {
        /// Echoed entry epoch.
        epoch: u64,
        /// Echoed entry interval.
        interval: u64,
    },
    /// New primary → peers: takeover announcement. Carries the bumped
    /// epoch and the interval broadcasting resumes at. Also sent back
    /// on a stale-epoch [`Msg::RepAppend`] to demote a deposed primary.
    RepPromote {
        /// The new primary's epoch.
        epoch: u64,
        /// First interval the new primary broadcasts.
        resume_at: u64,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_PUBLISH: u8 = 0x03;
const TAG_DONE: u8 = 0x04;
const TAG_BYE: u8 = 0x05;
const TAG_WELCOME: u8 = 0x81;
const TAG_ANSWER: u8 = 0x82;
const TAG_START: u8 = 0x90;
const TAG_HALT: u8 = 0x91;
// The replication and failover tags carry a checksum64 trailer over
// tag + payload (see `seal_body`). They are chosen so that no
// single-bit flip of a sealed tag lands on a length-promiscuous
// legacy tag (`TAG_QUERY`/`TAG_ANSWER` accept any body length and
// would otherwise swallow a damaged message as a valid frame carrier).
const TAG_REP_HELLO: u8 = 0x10;
const TAG_REP_APPEND: u8 = 0x11;
const TAG_REP_ACK: u8 = 0x14;
const TAG_REP_PROMOTE: u8 = 0x17;
const TAG_STANDBY: u8 = 0x88;
const TAG_SUCCESSORS: u8 = 0x8D;

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed {what}"))
}

/// Appends a [`checksum64`] trailer over tag byte + payload. The tag
/// is inside the checksum so a bit flip there cannot mutate one valid
/// sealed message into another.
fn seal_body(mut b: Vec<u8>) -> Vec<u8> {
    let sum = checksum64(&b);
    b.extend_from_slice(&sum.to_be_bytes());
    b
}

/// Verifies and strips the trailer of a sealed body (tag at `body[0]`),
/// returning the payload between tag and trailer.
fn open_body<'a>(body: &'a [u8], what: &str) -> io::Result<&'a [u8]> {
    if body.len() < 9 {
        return Err(bad_data(what));
    }
    let (data, trailer) = body.split_at(body.len() - 8);
    let declared = u64::from_be_bytes(trailer.try_into().unwrap());
    if checksum64(data) != declared {
        return Err(bad_data(what));
    }
    Ok(&data[1..])
}

impl Msg {
    fn body(&self) -> Vec<u8> {
        match self {
            Msg::Hello { index, udp_port } => {
                let mut b = vec![TAG_HELLO];
                b.extend_from_slice(&index.to_be_bytes());
                b.extend_from_slice(&udp_port.to_be_bytes());
                b
            }
            Msg::Query { frame } => {
                let mut b = vec![TAG_QUERY];
                b.extend_from_slice(frame);
                b
            }
            Msg::Publish { item, value } => {
                let mut b = vec![TAG_PUBLISH];
                b.extend_from_slice(&item.to_be_bytes());
                b.extend_from_slice(&value.to_be_bytes());
                b
            }
            Msg::Done { row } => {
                let mut b = vec![TAG_DONE];
                b.extend_from_slice(&row.to_bytes());
                b
            }
            Msg::Bye => vec![TAG_BYE],
            Msg::Welcome {
                interval_ms,
                intervals,
                lockstep,
            } => {
                let mut b = vec![TAG_WELCOME];
                b.extend_from_slice(&interval_ms.to_be_bytes());
                b.extend_from_slice(&intervals.to_be_bytes());
                b.push(*lockstep as u8);
                b
            }
            Msg::Answer { frame } => {
                let mut b = vec![TAG_ANSWER];
                b.extend_from_slice(frame);
                b
            }
            Msg::Start { interval } => {
                let mut b = vec![TAG_START];
                b.extend_from_slice(&interval.to_be_bytes());
                b
            }
            Msg::Halt => vec![TAG_HALT],
            Msg::Successors { peers } => {
                let mut b = vec![TAG_SUCCESSORS];
                b.extend_from_slice(&(peers.len() as u16).to_be_bytes());
                for p in peers {
                    let text = p.to_string();
                    b.push(text.len() as u8);
                    b.extend_from_slice(text.as_bytes());
                }
                seal_body(b)
            }
            Msg::Standby { epoch } => {
                let mut b = vec![TAG_STANDBY];
                b.extend_from_slice(&epoch.to_be_bytes());
                seal_body(b)
            }
            Msg::RepHello {
                node,
                epoch,
                last_applied,
            } => {
                let mut b = vec![TAG_REP_HELLO];
                b.extend_from_slice(&node.to_be_bytes());
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&last_applied.to_be_bytes());
                seal_body(b)
            }
            Msg::RepAppend {
                epoch,
                interval,
                publishes,
            } => {
                let mut b = vec![TAG_REP_APPEND];
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&interval.to_be_bytes());
                b.extend_from_slice(&(publishes.len() as u32).to_be_bytes());
                for (item, value) in publishes {
                    b.extend_from_slice(&item.to_be_bytes());
                    b.extend_from_slice(&value.to_be_bytes());
                }
                seal_body(b)
            }
            Msg::RepAck { epoch, interval } => {
                let mut b = vec![TAG_REP_ACK];
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&interval.to_be_bytes());
                seal_body(b)
            }
            Msg::RepPromote { epoch, resume_at } => {
                let mut b = vec![TAG_REP_PROMOTE];
                b.extend_from_slice(&epoch.to_be_bytes());
                b.extend_from_slice(&resume_at.to_be_bytes());
                seal_body(b)
            }
        }
    }

    fn parse(body: &[u8]) -> io::Result<Msg> {
        let (&tag, rest) = body.split_first().ok_or_else(|| bad_data("empty message"))?;
        let word = |b: &[u8], i: usize| u64::from_be_bytes(b[i..i + 8].try_into().unwrap());
        match tag {
            TAG_HELLO => {
                if rest.len() != 6 {
                    return Err(bad_data("hello"));
                }
                Ok(Msg::Hello {
                    index: u32::from_be_bytes(rest[0..4].try_into().unwrap()),
                    udp_port: u16::from_be_bytes(rest[4..6].try_into().unwrap()),
                })
            }
            TAG_QUERY => Ok(Msg::Query {
                frame: rest.to_vec(),
            }),
            TAG_PUBLISH => {
                if rest.len() != 16 {
                    return Err(bad_data("publish"));
                }
                Ok(Msg::Publish {
                    item: word(rest, 0),
                    value: word(rest, 8),
                })
            }
            TAG_DONE => Ok(Msg::Done {
                row: DecisionRow::from_bytes(rest)?,
            }),
            TAG_BYE => {
                if !rest.is_empty() {
                    return Err(bad_data("bye"));
                }
                Ok(Msg::Bye)
            }
            TAG_WELCOME => {
                if rest.len() != 17 || rest[16] > 1 {
                    return Err(bad_data("welcome"));
                }
                Ok(Msg::Welcome {
                    interval_ms: word(rest, 0),
                    intervals: word(rest, 8),
                    lockstep: rest[16] == 1,
                })
            }
            TAG_ANSWER => Ok(Msg::Answer {
                frame: rest.to_vec(),
            }),
            TAG_START => {
                if rest.len() != 8 {
                    return Err(bad_data("start"));
                }
                Ok(Msg::Start {
                    interval: word(rest, 0),
                })
            }
            TAG_HALT => {
                if !rest.is_empty() {
                    return Err(bad_data("halt"));
                }
                Ok(Msg::Halt)
            }
            TAG_SUCCESSORS => {
                let payload = open_body(body, "successors")?;
                if payload.len() < 2 {
                    return Err(bad_data("successors"));
                }
                let count = u16::from_be_bytes(payload[0..2].try_into().unwrap()) as usize;
                let mut peers = Vec::with_capacity(count);
                let mut at = 2;
                for _ in 0..count {
                    let len = *payload.get(at).ok_or_else(|| bad_data("successors"))? as usize;
                    at += 1;
                    let text = payload
                        .get(at..at + len)
                        .ok_or_else(|| bad_data("successors"))?;
                    at += len;
                    let text = std::str::from_utf8(text).map_err(|_| bad_data("successors"))?;
                    peers.push(text.parse().map_err(|_| bad_data("successors"))?);
                }
                if at != payload.len() {
                    return Err(bad_data("successors"));
                }
                Ok(Msg::Successors { peers })
            }
            TAG_STANDBY => {
                let payload = open_body(body, "standby")?;
                if payload.len() != 8 {
                    return Err(bad_data("standby"));
                }
                Ok(Msg::Standby {
                    epoch: word(payload, 0),
                })
            }
            TAG_REP_HELLO => {
                let payload = open_body(body, "rep hello")?;
                if payload.len() != 20 {
                    return Err(bad_data("rep hello"));
                }
                Ok(Msg::RepHello {
                    node: u32::from_be_bytes(payload[0..4].try_into().unwrap()),
                    epoch: word(payload, 4),
                    last_applied: word(payload, 12),
                })
            }
            TAG_REP_APPEND => {
                let payload = open_body(body, "rep append")?;
                if payload.len() < 20 {
                    return Err(bad_data("rep append"));
                }
                let count = u32::from_be_bytes(payload[16..20].try_into().unwrap()) as usize;
                if payload.len() != 20 + count * 16 {
                    return Err(bad_data("rep append"));
                }
                let publishes = (0..count)
                    .map(|n| (word(payload, 20 + n * 16), word(payload, 28 + n * 16)))
                    .collect();
                Ok(Msg::RepAppend {
                    epoch: word(payload, 0),
                    interval: word(payload, 8),
                    publishes,
                })
            }
            TAG_REP_ACK => {
                let payload = open_body(body, "rep ack")?;
                if payload.len() != 16 {
                    return Err(bad_data("rep ack"));
                }
                Ok(Msg::RepAck {
                    epoch: word(payload, 0),
                    interval: word(payload, 8),
                })
            }
            TAG_REP_PROMOTE => {
                let payload = open_body(body, "rep promote")?;
                if payload.len() != 16 {
                    return Err(bad_data("rep promote"));
                }
                Ok(Msg::RepPromote {
                    epoch: word(payload, 0),
                    resume_at: word(payload, 8),
                })
            }
            other => Err(bad_data(&format!("message tag {other:#04x}"))),
        }
    }

    /// Writes the message (length prefix + body) and flushes.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let body = self.body();
        w.write_all(&(body.len() as u32).to_be_bytes())?;
        w.write_all(&body)?;
        w.flush()
    }

    /// Reads one message. An EOF before the length prefix maps to
    /// `ErrorKind::UnexpectedEof` (a peer hanging up mid-session).
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Msg> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_be_bytes(len) as usize;
        if len == 0 || len > MAX_MESSAGE {
            return Err(bad_data("message length"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        Msg::parse(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_a_byte_pipe() {
        let all = vec![
            Msg::Hello {
                index: 7,
                udp_port: 40_123,
            },
            Msg::Query {
                frame: vec![1, 2, 3],
            },
            Msg::Publish {
                item: 42,
                value: u64::MAX,
            },
            Msg::Done {
                row: DecisionRow {
                    interval: 9,
                    awake: true,
                    heard: false,
                    queries: 3,
                    hits: 1,
                    misses: 2,
                    invalidated: 4,
                    drops: 1,
                    qhits: 5,
                    qmisses: 2,
                    qcommits: 1,
                    qaborts: 1,
                    evictions: 2,
                    capacity_misses: 1,
                },
            },
            Msg::Bye,
            Msg::Welcome {
                interval_ms: 50,
                intervals: 100,
                lockstep: true,
            },
            Msg::Answer { frame: vec![9; 40] },
            Msg::Start { interval: 12 },
            Msg::Halt,
            Msg::Successors {
                peers: vec!["127.0.0.1:4000".parse().unwrap(), "[::1]:9".parse().unwrap()],
            },
            Msg::Successors { peers: vec![] },
            Msg::Standby { epoch: 3 },
            Msg::RepHello {
                node: 1,
                epoch: 2,
                last_applied: 17,
            },
            Msg::RepAppend {
                epoch: 2,
                interval: 18,
                publishes: vec![(5, 99), (u64::MAX, 0)],
            },
            Msg::RepAppend {
                epoch: 1,
                interval: 1,
                publishes: vec![],
            },
            Msg::RepAck {
                epoch: 2,
                interval: 18,
            },
            Msg::RepPromote {
                epoch: 3,
                resume_at: 19,
            },
        ];
        let mut pipe = Vec::new();
        for m in &all {
            m.write_to(&mut pipe).unwrap();
        }
        let mut cursor = io::Cursor::new(pipe);
        for m in &all {
            assert_eq!(&Msg::read_from(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn decision_rows_encode_fixed_width() {
        let row = DecisionRow {
            interval: u64::MAX,
            awake: true,
            heard: true,
            queries: 1,
            hits: 2,
            misses: 3,
            invalidated: 4,
            drops: 5,
            qhits: 6,
            qmisses: 7,
            qcommits: 8,
            qaborts: 9,
            evictions: 10,
            capacity_misses: 11,
        };
        let bytes = row.to_bytes();
        assert_eq!(bytes.len(), DecisionRow::WIRE_LEN);
        assert_eq!(DecisionRow::from_bytes(&bytes).unwrap(), row);
        assert!(DecisionRow::from_bytes(&bytes[..40]).is_err());
        let mut bad = bytes;
        bad[8] = 0xFF;
        assert!(DecisionRow::from_bytes(&bad).is_err());
    }

    #[test]
    fn garbage_messages_fail_cleanly() {
        assert!(Msg::parse(&[]).is_err());
        assert!(Msg::parse(&[0x77]).is_err());
        assert!(Msg::parse(&[TAG_HELLO, 1]).is_err());
        let mut short = io::Cursor::new(vec![0, 0, 0, 9, TAG_BYE]);
        assert!(Msg::read_from(&mut short).is_err());
        let mut huge = io::Cursor::new((u32::MAX).to_be_bytes().to_vec());
        assert!(Msg::read_from(&mut huge).is_err());
    }
}
