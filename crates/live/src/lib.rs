//! # sw-live — the networked invalidation-report runtime
//!
//! The paper's design (Barbará & Imieliński, §2) is exactly the shape
//! of a deployable service: a *stateless* server periodically
//! broadcasting invalidation reports to clients it knows nothing
//! about, with a point-to-point uplink for cache misses. This crate is
//! that service, std-only (threads + `std::net`), speaking the
//! simulator's own wire format:
//!
//! - [`server`]: the `sw-serve` engine — ingests updates over TCP,
//!   builds reports via the same `crates/server` report builders the
//!   simulator uses (TS / AT / SIG / hybrid), and broadcasts each one
//!   as a sealed UDP datagram every `L` milliseconds;
//! - [`mu`]: the `sw-mu` client library — a real `crates/client`
//!   cache behind real sockets, buffering queries until the next heard
//!   report (the paper's latency rule), falling back to TCP uplink on
//!   miss, and applying each strategy's own drop/restamp/re-diagnose
//!   recovery on missed or corrupt frames (verified by
//!   [`sw_wireless::frame::checksum64`]);
//! - [`proto`]: the length-prefixed TCP control protocol and the
//!   [`proto::DecisionRow`] decision-log encoding;
//! - [`conformance`]: the harness that makes the simulator the
//!   daemon's executable spec — same master seed and update schedule
//!   ⇒ byte-identical per-client decision logs.
//!
//! The `observe` and `faults` cargo features forward to the same
//! switches everywhere else in the workspace: observation hangs
//! counters/spans/series on the real socket path, and fault injection
//! replays the simulator's per-client loss/corruption fates against
//! real datagrams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod mu;
pub mod proto;
pub mod server;

pub use conformance::{check_conformance, Conformance, ConformanceError};
pub use mu::{audit_against_history, run_mu, CacheAuditRow, LiveMu, LiveMuReport, MuOptions};
pub use proto::{encode_rows, DecisionRow, Msg};
pub use server::{
    LiveOptions, LiveServer, LiveServerReport, Pace, ServerHandle, Stopper, TickCoordinator,
    TickDirective,
};
// The ops-plane types both reports embed and both sides of the wire
// configure — re-exported so `sw-live` users need no direct `sw-ops`
// dependency.
pub use sw_ops::{arm_termination_flag, FlightRecorder, MetricsExporter, MetricsHub, Published};
