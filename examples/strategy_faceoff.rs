//! Strategy face-off across the sleep spectrum: sweeps `s` from
//! workaholics to sleepers and reports, per strategy, simulated hit
//! ratio and effectiveness alongside the closed-form predictions —
//! compressing the paper's Figure 3 into one terminal table.
//!
//! ```sh
//! cargo run --example strategy_faceoff            # full sweep
//! cargo run --example strategy_faceoff -- 0.25    # single s value
//! ```

use sleepers_workaholics::prelude::*;

fn simulate(params: ScenarioParams, strategy: Strategy) -> (f64, f64) {
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(30)
        .with_seed(1234);
    let mut cell = CellSimulation::new(cfg, strategy).expect("valid configuration");
    let report = cell.run_measured(100, 400).expect("reports fit in Scenario 1");
    (report.hit_ratio(), report.effectiveness())
}

fn main() {
    let mut base = ScenarioParams::scenario1();
    base.n_items = 1_000;
    base.k = 20;

    let s_values: Vec<f64> = match std::env::args().nth(1) {
        Some(arg) => vec![arg.parse().expect("s must be a number in [0,1]")],
        None => vec![0.0, 0.2, 0.4, 0.6, 0.8],
    };

    println!("Strategy face-off (Scenario-1-like, k = {})", base.k);
    println!(
        "{:>5} | {:>6} {:>9} {:>9} {:>9} {:>9}   verdict",
        "s", "strat", "h sim", "h model", "e sim", "e model"
    );
    for &s in &s_values {
        let params = base.with_s(s);
        let point = effectiveness_at(&params, s);
        let p_nf = sleepers_workaholics::analysis::throughput::sig_p_nf(&params);
        let rows: [(Strategy, f64, Option<f64>); 3] = [
            (
                Strategy::BroadcastTimestamps,
                h_ts_estimate(&params),
                point.e_ts,
            ),
            (Strategy::AmnesicTerminals, h_at(&params), point.e_at),
            (Strategy::Signatures, h_sig(&params, p_nf), point.e_sig),
        ];
        let (winner, _) = point.winner();
        for (strategy, h_model, e_model) in rows {
            let (h_sim, e_sim) = simulate(params, strategy);
            let mark = if strategy.name() == winner { "<- best (model)" } else { "" };
            println!(
                "{:>5.2} | {:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4}   {}",
                s,
                strategy.name(),
                h_sim,
                h_model,
                e_sim,
                e_model.unwrap_or(0.0),
                mark
            );
        }
        println!("{:>5} | {:>6} {:>9} {:>9} {:>9} {:>9.4}", "", "NC", "-", "-", "-", point.e_nc);
    }

    println!();
    println!("Expected shape (paper §5/§6): AT edges everyone at s = 0 (tiny");
    println!("report), loses catastrophically once units nap; TS survives naps");
    println!("up to k intervals; SIG is nap-proof at a fixed report price.");
}
