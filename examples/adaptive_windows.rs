//! §8's adaptive invalidation reports in action: a sleepy population
//! whose static TS window keeps evicting a perfectly good cache.
//!
//! Static TS with a small window `w = kL` drops the whole cache whenever
//! a unit naps longer than `k` intervals — even if nothing it cached
//! ever changes. Adaptive TS learns per-item windows from feedback:
//! hot-but-stable items grow their windows (sleepers keep their
//! caches), hot-and-churning items shrink to zero (reports slim down).
//!
//! ```sh
//! cargo run --example adaptive_windows
//! ```

use sleepers_workaholics::prelude::*;

fn run(strategy: Strategy, params: ScenarioParams, label: &str) {
    let cfg = CellConfig::new(params)
        .with_clients(12)
        .with_hotspot_size(20)
        .with_seed(88);
    let mut cell = CellSimulation::new(cfg, strategy).expect("valid configuration");
    let report = cell.run_measured(200, 800).expect("reports fit");
    println!(
        "{label:>22}: h = {:.4}, misses/interval = {:.2}, report bits total = {}",
        report.hit_ratio(),
        report.misses_per_interval(),
        report.report_bits_total
    );
}

fn main() {
    // Heavy sleepers (s = 0.6), few updates, and a deliberately tight
    // static window (k = 3).
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 5e-4;
    params.k = 3;
    let params = params.with_s(0.6);

    println!("Adaptive invalidation reports (§8) — sleepy population, k0 = 3");
    println!();
    run(Strategy::BroadcastTimestamps, params, "static TS");
    run(
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 10,
            step: 2,
        },
        params,
        "adaptive TS (method 1)",
    );
    run(
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method2,
            eval_period: 10,
            step: 2,
        },
        params,
        "adaptive TS (method 2)",
    );

    println!();
    println!("Method 1 (piggybacked hit histories) reconstructs per-item");
    println!("MHR/AHR at the server and grows windows precisely where the");
    println!("sleepers lose cache value; Method 2's uplink-count deltas are");
    println!("cheaper but coarser (§8.2's bursty-workload caveat).");
}
