//! Quickstart: simulate one cell under each invalidation strategy and
//! compare measured hit ratios and effectiveness against the paper's
//! closed-form model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sleepers_workaholics::prelude::*;

fn main() {
    // Scenario 1 of the paper (Figure 3): infrequent updates, narrow
    // channel, with a population that sleeps 40% of intervals.
    let params = ScenarioParams::scenario1().with_s(0.4);
    println!("Sleepers & Workaholics — quickstart");
    println!(
        "n = {} items, λ = {} q/s, μ = {} u/s, L = {} s, s = {}",
        params.n_items, params.lambda, params.mu, params.latency_secs, params.s
    );
    println!();

    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>14}",
        "strategy", "h (sim)", "h (model)", "e (sim)", "e (model)"
    );
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
        Strategy::NoCache,
    ] {
        let config = CellConfig::new(params)
            .with_clients(12)
            .with_hotspot_size(40)
            .with_seed(2026);
        let mut cell = CellSimulation::new(config, strategy).expect("valid configuration");
        let report = cell
            .run_measured(100, 400)
            .expect("scenario 1 reports always fit the channel");

        let model_h = match strategy {
            Strategy::BroadcastTimestamps => h_ts_estimate(&params),
            Strategy::AmnesicTerminals => h_at(&params),
            Strategy::Signatures => {
                let p_nf = sleepers_workaholics::analysis::throughput::sig_p_nf(&params);
                h_sig(&params, p_nf)
            }
            _ => 0.0,
        };
        let point = effectiveness_at(&params, params.s);
        let model_e = match strategy {
            Strategy::BroadcastTimestamps => point.e_ts.unwrap_or(0.0),
            Strategy::AmnesicTerminals => point.e_at.unwrap_or(0.0),
            Strategy::Signatures => point.e_sig.unwrap_or(0.0),
            _ => point.e_nc,
        };
        println!(
            "{:>9} {:>12.4} {:>12.4} {:>14.4} {:>14.4}",
            strategy.name(),
            report.hit_ratio(),
            model_h,
            report.effectiveness(),
            model_e
        );
    }

    println!();
    println!("The paper's verdict for this regime (sleepers, rare updates):");
    println!("  TS and SIG retain their caches through naps; AT forgets and");
    println!("  refetches; no-caching burns the narrow uplink on every query.");
}
