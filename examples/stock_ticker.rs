//! Example 1 of the paper (§1.1): mobile users watching business news /
//! stock data through per-user "filters".
//!
//! A universe of tickers is grouped into sectors; each user's filter
//! selects a couple of whole sectors plus a few individually watched
//! tickers — that union is the user's hotspot. Users wake, run a
//! spreadsheet-style burst of queries, and doze off. We compare the
//! three broadcast strategies, and show the §7 arithmetic condition
//! (quasi-copies with price tolerance ε) shrinking the reports.
//!
//! ```sh
//! cargo run --example stock_ticker
//! ```

use sleepers_workaholics::prelude::*;
use sleepers_workaholics::quasi::EpsilonFilter;
use sleepers_workaholics::sim::StreamId;
use sleepers_workaholics::workload::StockFilterWorkload;

fn main() {
    let universe = StockFilterWorkload::new(20, 50); // 20 sectors × 50 tickers
    let mut params = ScenarioParams::scenario1();
    params.n_items = universe.n_items();
    params.mu = 1e-3; // prices move 10x faster than news archives
    // At 10× Scenario 1's update rate, the scenario's default window
    // (k=100, 1000 s) would sweep most of the database into every TS
    // report and overflow the interval capacity L·W; fast-moving data
    // needs a short window (§4: w = kL trades report size for the
    // longest sleep TS can bridge).
    params.k = 10;
    let params = params.with_s(0.5); // traders sleep half the intervals

    println!("Example 1 — stock ticker filters ({} tickers)", universe.n_items());
    println!();

    // Build per-user filters as explicit hotspots.
    let seed = MasterSeed(77);
    let filters: Vec<Vec<u64>> = (0..10)
        .map(|u| {
            let mut rng = seed.stream(StreamId::Hotspot { index: u });
            universe.draw_filter(2, 5, &mut rng)
        })
        .collect();
    let filter_size = filters[0].len();
    println!("each user filters 2 sectors + 5 tickers = {filter_size} items");
    println!();

    println!("{:>9} {:>10} {:>14} {:>16}", "strategy", "h (sim)", "uplink bits", "report bits");
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ] {
        // The library draws hotspots internally with the same size, so
        // the cell is statistically identical to the filter workload.
        let config = CellConfig::new(params)
            .with_clients(10)
            .with_hotspot_size(filter_size)
            .with_seed(77);
        let mut cell = CellSimulation::new(config, strategy).expect("valid configuration");
        let report = cell.run_measured(100, 400).expect("reports fit");
        println!(
            "{:>9} {:>10.4} {:>14} {:>16}",
            strategy.name(),
            report.hit_ratio(),
            report.traffic.uplink_bits(),
            report.traffic.report_bits
        );
    }

    // §7: "if the MUs are caching stock prices, it may be perfectly
    // acceptable to use values that are not completely up to date, as
    // long as they are within 0.5% of the true prices."
    println!();
    println!("Quasi-copies (arithmetic condition, Eq. 28) on random-walk prices:");
    println!("{:>12} {:>12} {:>14}", "ε (ticks)", "reported", "suppressed %");
    let mut rng = seed.stream(StreamId::Custom { tag: 1 });
    for eps in [0u64, 10, 25, 50] {
        let mut filter = EpsilonFilter::new(eps);
        let mut prices = vec![10_000i64; universe.n_items() as usize];
        for (i, p) in prices.iter_mut().enumerate() {
            filter.seed(i as u64, *p as u64);
        }
        for _ in 0..50_000 {
            let t = rng.uniform_index(universe.n_items());
            let mv = rng.uniform_index(6) as i64 + 1;
            let sign = if rng.bernoulli(0.5) { 1 } else { -1 };
            prices[t as usize] += sign * mv;
            let _ = filter.should_report(t, prices[t as usize] as u64);
        }
        println!(
            "{:>12} {:>12} {:>14.1}",
            eps,
            filter.passed(),
            100.0 * filter.suppression_ratio()
        );
    }
    println!();
    println!("ε = 50 ticks (0.5% of a 10,000-tick price) suppresses almost all");
    println!("report traffic while every cached price stays within tolerance.");
}
