//! Example 2 of the paper (§1.2): navigational traffic maps.
//!
//! The map is a grid of sections, each one a database item summarizing
//! local traffic. Every user displays the 3×3 neighborhood of their
//! current section and refreshes it periodically; users drive slowly,
//! so consecutive hotspots overlap heavily ("there is a large degree of
//! locality in these queries"). Traffic data churns, so this is an
//! update-heavy workload where the AT strategy shines for units that
//! stay awake.
//!
//! This example drives the client/server building blocks directly (the
//! moving hotspot is outside the fixed-hotspot `CellSimulation` driver)
//! — a demonstration of composing the library's lower layers.
//!
//! ```sh
//! cargo run --example traffic_map
//! ```

use sleepers_workaholics::client::{AtHandler, Cache, ReportHandler};
use sleepers_workaholics::server::{AtBuilder, Database, ReportBuilder, UpdateEngine, UplinkProcessor};
use sleepers_workaholics::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use sleepers_workaholics::workload::{TrafficGrid, TrafficMapWorkload};

fn main() {
    let grid = TrafficGrid::new(30, 30); // 900 map sections
    let latency = SimDuration::from_secs(10.0);
    let mu = 5e-3; // traffic conditions churn
    let intervals = 600u64;
    let seed = MasterSeed(42);

    println!(
        "Example 2 — traffic map: {}×{} grid, {} sections, μ = {mu}/s per section",
        grid.width,
        grid.height,
        grid.n_items()
    );

    let mut db = Database::new(grid.n_items(), |i| i * 3 + 1, latency.scaled(4.0));
    let mut update_rng = seed.stream(StreamId::Updates);
    let mut engine = UpdateEngine::new(grid.n_items(), mu, &mut update_rng);
    let mut builder = AtBuilder::new(latency);
    let mut uplink = UplinkProcessor::new();

    // Five drivers with their own walks and AT caches.
    let mut walks: Vec<TrafficMapWorkload> = (0..5)
        .map(|u| {
            let mut rng = seed.stream(StreamId::Hotspot { index: u });
            TrafficMapWorkload::new(grid, 0.3, &mut rng)
        })
        .collect();
    let mut caches: Vec<Cache> = (0..5).map(|_| Cache::unbounded()).collect();
    let mut handlers: Vec<AtHandler> = (0..5).map(|_| AtHandler::new(latency)).collect();
    let mut t_l: Vec<Option<SimTime>> = vec![None; 5];
    let mut walk_rng = seed.stream(StreamId::Custom { tag: 9 });

    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut refreshed_on_move = 0u64;

    for i in 1..=intervals {
        let t_prev = SimTime::from_secs((i - 1) as f64 * latency.as_secs());
        let t_i = SimTime::from_secs(i as f64 * latency.as_secs());
        engine.advance(&mut db, t_prev, t_i, &mut update_rng);
        let payload = builder.build(i, t_i, &db);

        for u in 0..walks.len() {
            // The display refreshes every interval: query the whole 3×3
            // neighborhood.
            let _ = handlers[u].process(&mut caches[u], &payload, t_l[u]);
            t_l[u] = Some(t_i);
            let neighborhood = walks[u].hotspot();
            for &section in &neighborhood {
                if caches[u].get(section).is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                    let ans = uplink.answer(&db, section, t_i, None);
                    caches[u].insert(ans.item, ans.value, ans.timestamp);
                }
            }
            // Drive on; entering a new section pulls a fresh row of
            // sections into the display next interval.
            if walks[u].step(&mut walk_rng) {
                refreshed_on_move += 1;
            }
        }
        db.prune_log(t_i);
    }

    let total = hits + misses;
    println!();
    println!("intervals simulated : {intervals}");
    println!("display refreshes   : {total} section reads");
    println!("cache hits          : {hits} ({:.1}%)", 100.0 * hits as f64 / total as f64);
    println!("uplink fetches      : {misses}");
    println!("section changes     : {refreshed_on_move} moves across the grid");
    println!();
    println!("Locality pays: a 3×3 display over a slow walk re-reads mostly");
    println!("cached sections; only churned traffic data and newly entered");
    println!("map rows go uplink.");
    assert!(hits > misses, "locality should make hits dominate");
}
