//! Example 1 of the paper (§1.1), cached as *query results*: a trader's
//! price screen ("which of my watched tickers trade below my limit?")
//! held as a materialized result set and kept consistent by the same
//! invalidation reports that police the item cache.
//!
//! `stock_ticker.rs` shows Example 1 at the item level. This example
//! arms the `sw-query` plane on top of it: every client caches a few
//! predicate screens over its filter, re-verifies them against each
//! broadcast report, and occasionally runs a multi-ticker transactional
//! read (a spread trade needs both legs from one consistent snapshot —
//! commit iff the pinned rows cohere under the report clock).
//!
//! ```sh
//! cargo run --example stock_filter
//! ```

use sleepers_workaholics::prelude::*;
use sleepers_workaholics::sim::StreamId;
use sleepers_workaholics::workload::StockFilterWorkload;

fn main() {
    let universe = StockFilterWorkload::new(20, 50); // 20 sectors × 50 tickers
    let mut params = ScenarioParams::scenario1();
    params.n_items = universe.n_items();
    params.mu = 1e-3; // prices move 10x faster than news archives
    // Same short window as `stock_ticker.rs`: at this update rate the
    // scenario's default w = 100L would overflow the TS report.
    params.k = 10;
    let params = params.with_s(0.5); // traders sleep half the intervals

    // Every screen carries a Below-threshold value predicate (the
    // "stocks under my limit" filter), and a quarter of the wake-ups
    // run a two-leg transactional read on top of the screens.
    let mut qc = QueryPlaneConfig::new().with_txn_probability(0.25);
    qc.predicate_fraction = 1.0;

    // Same filter shape as `stock_ticker.rs`: 2 sectors + 5 tickers.
    let mut rng = MasterSeed(77).stream(StreamId::Hotspot { index: 0 });
    let filter_size = universe.draw_filter(2, 5, &mut rng).len();

    println!(
        "Example 1 — cached price screens over {} tickers",
        universe.n_items()
    );
    println!();
    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "strategy", "item h", "query h", "inval", "reverif", "commits", "aborts"
    );
    let mut last: Option<CellSimulation> = None;
    for strategy in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ] {
        let config = CellConfig::new(params)
            .with_clients(10)
            .with_hotspot_size(filter_size)
            .with_seed(77)
            .with_query(qc);
        let mut cell = CellSimulation::new(config, strategy).expect("valid configuration");
        let report = cell.run_measured(100, 400).expect("reports fit");
        let q = &report.query;
        println!(
            "{:>9} {:>9.4} {:>9.4} {:>8} {:>8} {:>8} {:>8}",
            strategy.name(),
            report.hit_ratio(),
            q.hit_ratio(),
            q.entries_invalidated,
            q.entries_reverified,
            q.txn_commits,
            q.txn_aborts,
        );
        // Keep the TS cell: its query cache is the fullest at session
        // end (AT and SIG shed screens wholesale), so the peek below
        // has something to show.
        if matches!(strategy, Strategy::BroadcastTimestamps) {
            last = Some(cell);
        }
    }

    // Peek at one trader's screens as the session left them: each entry
    // is a whole-footprint materialization, the *result* is the subset
    // currently under the limit, and `verified_at` is the report tick
    // that last vouched for it.
    let cell = last.expect("ran at least one strategy");
    let plane = cell.query_plane(0).expect("query plane was armed");
    println!();
    println!("trader 0's cached screens after the TS run:");
    println!(
        "{:>6} {:>22} {:>10} {:>12}",
        "screen", "predicate", "result", "verified@s"
    );
    for entry in plane.cache().iter() {
        let shown = entry.result().count();
        let predicate = match entry.predicate {
            QueryPredicate::Below(t) => format!("price < {:.2}%ile", 100.0 * t as f64 / u64::MAX as f64),
            QueryPredicate::Any => "any".to_string(),
        };
        println!(
            "{:>6} {:>22} {:>7}/{:<2} {:>12.0}",
            entry.rank,
            predicate,
            shown,
            entry.rows.len(),
            entry.verified_at.as_secs(),
        );
    }
    println!();
    println!("A screen answers from cache only while every footprint ticker is");
    println!("verified under the latest report; one invalidated ticker drops the");
    println!("whole screen (a price moving *into* the filter must be seen too).");
    println!("Aborted rows above are spread trades whose two legs straddled an");
    println!("update — detected by the report clock and retried, never served.");
}
