//! Randomized invariants on the report pipeline (DESIGN.md §6,
//! invariants 4 and 6): report windows are exactly the paper's sets,
//! and the signature algebra composes correctly, under arbitrary
//! update schedules. Driven by the workspace's own deterministic
//! `RngStream` (seeded, replayable) rather than an external
//! property-testing framework.

use sleepers_workaholics::server::{AtBuilder, Database, ReportBuilder, TsBuilder};
use sleepers_workaholics::signature::{combine, item_signature, SubsetFamily};
use sleepers_workaholics::sim::{MasterSeed, RngStream, SimDuration, SimTime, StreamId};
use sleepers_workaholics::wireless::FramePayload;

fn rng(tag: u64) -> RngStream {
    MasterSeed(0xC0FF_EE00_0000_0000 | tag).stream(StreamId::Custom { tag })
}

/// An arbitrary update schedule: (item, at-seconds) pairs in time order.
fn update_schedule(rng: &mut RngStream, n_items: u64, horizon: f64) -> Vec<(u64, f64)> {
    let len = rng.uniform_index(60) as usize;
    let mut v: Vec<(u64, f64)> = (0..len)
        .map(|_| (rng.uniform_index(n_items), rng.uniform() * horizon))
        .collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
    v
}

fn distinct_items(rng: &mut RngStream, universe: u64, min: usize, max: usize) -> Vec<u64> {
    let count = min + rng.uniform_index((max - min) as u64) as usize;
    let mut set = std::collections::BTreeSet::new();
    while set.len() < count {
        set.insert(rng.uniform_index(universe));
    }
    set.into_iter().collect()
}

fn apply(db: &mut Database, schedule: &[(u64, f64)]) {
    for (step, &(item, at)) in schedule.iter().enumerate() {
        // Monotone per-item times are guaranteed by the global sort.
        db.apply_update(item, 10_000 + step as u64, SimTime::from_secs(at));
    }
}

/// Invariant 4a: the TS report at `T_i` contains exactly
/// `{j : T_i − w < t_j ≤ T_i}` with each item's latest timestamp.
#[test]
fn ts_report_is_exactly_the_window() {
    let mut rng = rng(1);
    for case in 0..64 {
        let schedule = update_schedule(&mut rng, 50, 200.0);
        let k = 1 + rng.uniform_index(7) as u32;
        let latency = SimDuration::from_secs(10.0);
        let mut db = Database::new(50, |i| i, SimDuration::from_secs(1e4));
        apply(&mut db, &schedule);
        let mut builder = TsBuilder::new(latency, k);
        let t_i = 200.0;
        let w = k as f64 * 10.0;
        let payload = builder.build((t_i / 10.0) as u64, SimTime::from_secs(t_i), &db);
        let entries = match payload {
            FramePayload::TimestampReport { entries, .. } => entries,
            other => panic!("unexpected {other:?}"),
        };
        // Reference: last update per item within the window.
        let mut expected = std::collections::BTreeMap::new();
        for &(item, at) in &schedule {
            if at > t_i - w && at <= t_i {
                expected.insert(item, (at * 1e6).round() as u64);
            }
        }
        let got: std::collections::BTreeMap<u64, u64> = entries.into_iter().collect();
        assert_eq!(got, expected, "case {case} (k={k})");
    }
}

/// Invariant 4b: the AT report covers exactly `(T_{i−1}, T_i]`.
#[test]
fn at_report_is_exactly_one_interval() {
    let mut rng = rng(2);
    for case in 0..64 {
        let schedule = update_schedule(&mut rng, 50, 200.0);
        let latency = SimDuration::from_secs(10.0);
        let mut db = Database::new(50, |i| i, SimDuration::from_secs(1e4));
        apply(&mut db, &schedule);
        let mut builder = AtBuilder::new(latency);
        let payload = builder.build(20, SimTime::from_secs(200.0), &db);
        let ids = match payload {
            FramePayload::AmnesicReport { ids, .. } => ids,
            other => panic!("unexpected {other:?}"),
        };
        let mut expected: Vec<u64> = schedule
            .iter()
            .filter(|&&(_, at)| at > 190.0 && at <= 200.0)
            .map(|&(item, _)| item)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(ids, expected, "case {case}");
    }
}

/// Invariant 6a: equal item sets with equal values give equal combined
/// signatures regardless of order; any single value change flips the
/// combination (up to the 2^−g collision budget, which at g = 32 never
/// fires in 64 cases).
#[test]
fn combined_signature_set_semantics() {
    let mut rng = rng(3);
    for case in 0..64 {
        let items = distinct_items(&mut rng, 1000, 1, 40);
        let flip_idx = rng.uniform_index(40) as usize;
        let g = 32;
        let forward: Vec<u64> = items
            .iter()
            .map(|&i| item_signature(i, i * 7 + 1, g))
            .collect();
        let backward: Vec<u64> = items
            .iter()
            .rev()
            .map(|&i| item_signature(i, i * 7 + 1, g))
            .collect();
        assert_eq!(
            combine(forward.iter().copied()),
            combine(backward.iter().copied()),
            "case {case}: order must not matter"
        );

        let victim = items[flip_idx % items.len()];
        let mutated = combine(items.iter().map(|&i| {
            let value = if i == victim { i * 7 + 2 } else { i * 7 + 1 };
            item_signature(i, value, g)
        }));
        assert_ne!(
            mutated,
            combine(forward.iter().copied()),
            "case {case}: a changed value must flip the combination"
        );
    }
}

/// Invariant 6b: XOR-patching a combined signature for one member's
/// change equals recomputing from scratch.
#[test]
fn incremental_patch_equals_recompute() {
    let mut rng = rng(4);
    for case in 0..64 {
        let items = distinct_items(&mut rng, 500, 2, 30);
        let new_value = rng.next_u64();
        let g = 16;
        let victim = items[0];
        let old = combine(items.iter().map(|&i| item_signature(i, i + 1, g)));
        let patched =
            old ^ item_signature(victim, victim + 1, g) ^ item_signature(victim, new_value, g);
        let recomputed = combine(items.iter().map(|&i| {
            let v = if i == victim { new_value } else { i + 1 };
            item_signature(i, v, g)
        }));
        assert_eq!(patched, recomputed, "case {case}");
    }
}

/// The shared-seed property behind SIG: two `SubsetFamily` values built
/// from the same (seed, m, f) agree on every membership query.
#[test]
fn families_agree_and_empty_cache_is_silent() {
    let mut rng = rng(5);
    for case in 0..32 {
        let seed = rng.next_u64();
        let f = 1 + rng.uniform_index(49) as u32;
        let a = SubsetFamily::new(seed, 64, f);
        let b = SubsetFamily::new(seed, 64, f);
        for j in 0..64u32 {
            for item in (0..200u64).step_by(7) {
                assert_eq!(
                    a.contains(j, item),
                    b.contains(j, item),
                    "case {case}: family divergence at subset {j}, item {item}"
                );
            }
        }
    }
}

/// Invariant 2 (boundary discipline): TS drops the whole cache iff the
/// gap strictly exceeds `w`; AT iff it strictly exceeds `L` — checked at
/// the exact boundary, one tick inside, and one tick outside.
#[test]
fn drop_boundaries_are_exact() {
    use sleepers_workaholics::client::{AtHandler, Cache, ReportHandler, TsHandler};
    let latency = SimDuration::from_secs(10.0);

    for (gap, expect_drop) in [(20.0, false), (20.0001, true), (19.9999, false)] {
        let mut h = TsHandler::new(latency, 2); // w = 20
        let mut c = Cache::unbounded();
        c.insert(1, 1, SimTime::from_secs(100.0));
        let report = FramePayload::TimestampReport {
            report_ts_micros: ((100.0 + gap) * 1e6) as u64,
            entries: vec![],
        };
        let out = h.process(&mut c, &report, Some(SimTime::from_secs(100.0)));
        assert_eq!(
            out.dropped_all, expect_drop,
            "TS gap {gap}: expected drop={expect_drop}"
        );
    }

    for (gap, expect_drop) in [(10.0, false), (10.001, true)] {
        let mut h = AtHandler::new(latency);
        let mut c = Cache::unbounded();
        c.insert(1, 1, SimTime::from_secs(100.0));
        let report = FramePayload::AmnesicReport {
            report_ts_micros: ((100.0 + gap) * 1e6) as u64,
            ids: vec![],
        };
        let out = h.process(&mut c, &report, Some(SimTime::from_secs(100.0)));
        assert_eq!(
            out.dropped_all, expect_drop,
            "AT gap {gap}: expected drop={expect_drop}"
        );
    }
}
