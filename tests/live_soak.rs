//! Thirty-second loopback soak of the live runtime.
//!
//! One real `sw-serve` session per strategy (TS, AT, SIG — run in
//! parallel threads), each with 8 mobile units over real TCP/UDP
//! loopback sockets, wall-clock pacing, genuine sleep/wake timers (the
//! units' seeded sleep runs translate into real intervals of radio
//! silence), and seeded receiver-side UDP drops on top.
//!
//! The assertion is the paper's consistency contract under all of
//! that: auditing every cache entry of every awake interval against
//! the server's value history finds **zero stale entries** for the
//! never-stale strategies (TS, AT) and at most the diagnosis bound for
//! SIG (§6's controlled false-validation risk). Every unit also runs
//! the query plane, so the audit covers cached *query results* row by
//! row under the same contract, and the multi-item transactional reads
//! must resolve — commits and detected-and-aborted non-serializable
//! interleavings both observed across the fleet.

use std::net::SocketAddr;
use std::thread;

use sleepers::query::{QueryPlaneConfig, QueryStats};
use sleepers::{CellConfig, Strategy};
use sw_live::{
    audit_against_history, run_mu, FlightRecorder, LiveMuReport, LiveOptions, LiveServer,
    MuOptions,
};
use sw_workload::ScenarioParams;

// ~30 seconds of wall clock: the three strategy stacks run in
// parallel, each pacing 580 broadcast intervals at 50 real ms.
const CLIENTS: usize = 8;
const INTERVALS: u64 = 580;
const INTERVAL_MS: u64 = 50;
const RX_DROP: f64 = 0.15;

fn soak_cell(seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1().with_s(0.5);
    params.n_items = 200;
    // Update-heavy relative to the paper's defaults, so invalidations
    // and restamps actually exercise the recovery paths.
    params.mu = 4e-3;
    params.k = 8;
    CellConfig::new(params)
        .with_clients(CLIENTS)
        .with_hotspot_size(20)
        .with_seed(seed)
        .with_safety_checking()
        .with_query(QueryPlaneConfig::new().with_txn_probability(0.3))
}

struct SoakOutcome {
    strategy: Strategy,
    entries_checked: u64,
    violations: u64,
    reports_heard: u64,
    reports_missed: u64,
    queries: u64,
    query: QueryStats,
    flights: Vec<FlightRecorder>,
}

/// A failing audit dumps every unit's flight ring before the assert
/// fires — the NDJSON shows what each unit decided in the intervals
/// leading up to the stale entry.
fn dump_flights(o: &SoakOutcome) {
    let name = o.strategy.name();
    let dir = std::env::temp_dir();
    for (idx, ring) in o.flights.iter().enumerate() {
        let path = dir.join(format!("sw-soak-{name}-mu{idx}.ndjson"));
        let reason = format!("{}: {} stale cache entries in audit", name, o.violations);
        match ring.dump(&path, &reason) {
            Ok(bytes) => eprintln!("{name}: mu{idx} flight ring ({bytes} B) -> {}", path.display()),
            Err(e) => eprintln!("{name}: mu{idx} flight dump failed: {e}"),
        }
    }
}

fn run_soak(cfg: CellConfig, strategy: Strategy) -> SoakOutcome {
    let handle = LiveServer::spawn(cfg.clone(), strategy, LiveOptions::paced(INTERVALS, INTERVAL_MS))
        .expect("spawn live server");
    let addr: SocketAddr = handle.addr();
    let opts = MuOptions {
        rx_drop: RX_DROP,
        audit_cache: true,
        // Keep a forensic ring per unit: if the audit below finds a
        // stale entry, the dump shows what each unit decided leading
        // up to it.
        flight_capacity: 64,
        ..MuOptions::default()
    };
    let workers: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            let cfg = cfg.clone();
            let opts = opts.clone();
            thread::spawn(move || run_mu(addr, &cfg, strategy, idx, opts))
        })
        .collect();
    let reports: Vec<LiveMuReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread").expect("client session"))
        .collect();
    let server = handle.wait().expect("server session");
    assert_eq!(server.intervals, INTERVALS, "{}: truncated session", strategy.name());
    let history = server
        .history
        .expect("safety checking was on; the server kept a value history");

    let mut entries_checked = 0;
    let mut violations = 0;
    let mut reports_heard = 0;
    let mut reports_missed = 0;
    let mut queries = 0;
    let mut query = QueryStats::default();
    let mut flights = Vec::with_capacity(reports.len());
    for report in reports {
        // `report.audit` interleaves item-cache rows and query-result
        // rows; the history check applies to both uniformly.
        let (checked, bad) = audit_against_history(&history, &report.audit);
        entries_checked += checked;
        violations += bad;
        reports_heard += report.reports_heard;
        reports_missed += report.reports_missed;
        queries += report.stats.queries_posed;
        query.absorb(&report.query);
        flights.push(report.flight);
    }
    SoakOutcome {
        strategy,
        entries_checked,
        violations,
        reports_heard,
        reports_missed,
        queries,
        query,
        flights,
    }
}

#[test]
fn live_soak_never_stale_under_drops_and_sleep() {
    let stacks = [
        (Strategy::BroadcastTimestamps, 0x50AC_0001u64),
        (Strategy::AmnesicTerminals, 0x50AC_0002),
        (Strategy::Signatures, 0x50AC_0003),
    ];
    let outcomes: Vec<SoakOutcome> = stacks
        .map(|(strategy, seed)| thread::spawn(move || run_soak(soak_cell(seed), strategy)))
        .into_iter()
        .map(|t| t.join().expect("soak stack"))
        .collect();

    for o in &outcomes {
        let name = o.strategy.name();
        eprintln!(
            "{name}: {} queries, {} reports heard, {} missed, \
             {} cache+query entries audited, {} stale; query plane {:?}",
            o.queries, o.reports_heard, o.reports_missed, o.entries_checked, o.violations, o.query
        );
        // The soak must have actually soaked: queries flowed, reports
        // were heard, and the drop injector really dropped some.
        assert!(o.queries > 0, "{name}: no queries posed");
        assert!(o.reports_heard > 0, "{name}: no report ever heard");
        // The query plane must have actually cached and re-served
        // results, and its transactional reads must resolve cleanly.
        assert!(
            o.query.hits > 0 && o.query.misses > 0,
            "{name}: query plane never exercised: {:?}",
            o.query
        );
        assert!(
            o.query.txn_commits > 0,
            "{name}: no multi-item read ever committed: {:?}",
            o.query
        );
        assert!(
            o.query.txn_commits + o.query.txn_aborts <= o.query.txns_begun,
            "{name}: more txn resolutions than begins: {:?}",
            o.query
        );
        assert!(
            o.reports_missed > 0,
            "{name}: rx-drop injection never fired ({RX_DROP} over \
             {INTERVALS} intervals x {CLIENTS} clients)"
        );
        assert!(o.entries_checked > 0, "{name}: nothing was ever cached");
        match o.strategy {
            // Never-stale strategies: the contract is absolute.
            Strategy::BroadcastTimestamps | Strategy::AmnesicTerminals => {
                if o.violations > 0 {
                    dump_flights(o);
                }
                assert_eq!(
                    o.violations, 0,
                    "{name}: stale cache entries in a never-stale strategy"
                );
            }
            // SIG validates by diagnosis; its false-validation rate is
            // bounded, not zero (§6).
            _ => {
                let rate = o.violations as f64 / o.entries_checked as f64;
                if rate > Strategy::SIG_VIOLATION_BOUND {
                    dump_flights(o);
                }
                assert!(
                    rate <= Strategy::SIG_VIOLATION_BOUND,
                    "{name}: stale rate {rate:.4} above the diagnosis bound"
                );
            }
        }
    }

    // Update-heavy cells with 30% transaction arrivals over ~14k awake
    // intervals: at least one multi-item read across the three stacks
    // must have witnessed a footprint change between its pinned reads
    // and been detected-and-aborted rather than committed.
    let aborts: u64 = outcomes.iter().map(|o| o.query.txn_aborts).sum();
    assert!(
        aborts > 0,
        "no non-serializable interleaving was ever detected fleet-wide"
    );
}
