//! E12/E13 end-to-end: the §7 and §8 extensions integrated with the
//! full cell simulation.

use sleepers_workaholics::prelude::*;

fn sleepy_params() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 500;
    p.mu = 5e-4;
    p.k = 3;
    p.with_s(0.6)
}

fn run(params: ScenarioParams, strategy: Strategy, seed: u64) -> SimulationReport {
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(20)
        .with_seed(seed);
    CellSimulation::new(cfg, strategy)
        .expect("valid config")
        .run_measured(100, 500)
        .expect("fits channel")
}

#[test]
fn adaptive_ts_rescues_sleepers_hit_ratio() {
    // §8's purpose: with a tight static window, sleepers keep losing
    // their caches; adaptive windows grow where it pays.
    let params = sleepy_params();
    let static_ts = run(params, Strategy::BroadcastTimestamps, 7);
    for method in [FeedbackMethod::Method1, FeedbackMethod::Method2] {
        let adaptive = run(
            params,
            Strategy::AdaptiveTs {
                method,
                eval_period: 10,
                step: 2,
            },
            7,
        );
        assert!(
            adaptive.hit_ratio() > static_ts.hit_ratio() + 0.1,
            "{method:?}: adaptive h {} must clearly beat static h {}",
            adaptive.hit_ratio(),
            static_ts.hit_ratio()
        );
    }
}

#[test]
fn adaptive_ts_saves_net_channel_bits() {
    // The gain function optimizes total bits: extra report mentions must
    // buy a larger saving in uplink (miss) traffic.
    let params = sleepy_params();
    let static_ts = run(params, Strategy::BroadcastTimestamps, 11);
    let adaptive = run(
        params,
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 10,
            step: 2,
        },
        11,
    );
    let per_miss = (params.query_bits + params.answer_bits) as u64;
    let static_total = static_ts.report_bits_total + static_ts.miss_events * per_miss;
    let adaptive_total = adaptive.report_bits_total + adaptive.miss_events * per_miss;
    assert!(
        adaptive_total < static_total,
        "adaptive must win on total bits: {adaptive_total} vs {static_total}"
    );
}

#[test]
fn adaptive_windows_diverge_per_item() {
    // After a long run, windows are no longer uniform: some grew, and
    // the exceptions list is non-trivial.
    let params = sleepy_params();
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(20)
        .with_seed(13);
    let mut sim = CellSimulation::new(
        cfg,
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 10,
            step: 2,
        },
    )
    .unwrap();
    sim.run(400).unwrap();
    let windows: Vec<u32> = (0..params.n_items)
        .map(|i| sim.adaptive_window(i).unwrap())
        .collect();
    let grew = windows.iter().filter(|&&w| w > params.k).count();
    assert!(grew > 0, "some windows must grow for a sleepy population");
    let max = windows.iter().max().unwrap();
    assert!(
        *max >= params.k + 4,
        "hot items should grow well past the default, max = {max}"
    );
}

#[test]
fn quasi_delay_trades_hit_ratio_for_report_bits() {
    // §7: the delay condition thins reports; hits may suffer slightly
    // (entries are dropped at their lag deadline even when a plain-TS
    // client could have revalidated them precisely).
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 2e-3;
    params.k = 8;
    let params = params.with_s(0.2);
    let plain = run(params, Strategy::BroadcastTimestamps, 17);
    let quasi = run(params, Strategy::QuasiDelay { alpha_intervals: 8 }, 17);
    assert!(
        quasi.report_bits_total < plain.report_bits_total,
        "obligation lists must thin the reports: {} vs {}",
        quasi.report_bits_total,
        plain.report_bits_total
    );
    // And the saving is substantial at this update rate.
    let saving = 1.0 - quasi.report_bits_total as f64 / plain.report_bits_total as f64;
    assert!(saving > 0.2, "expected >20% report saving, got {:.1}%", saving * 100.0);
}

#[test]
fn quasi_alpha_controls_the_tradeoff() {
    // Larger α ⇒ fewer obligations coming due ⇒ smaller reports.
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.mu = 2e-3;
    params.k = 20;
    let params = params.with_s(0.2);
    let tight = run(params, Strategy::QuasiDelay { alpha_intervals: 2 }, 19);
    let loose = run(params, Strategy::QuasiDelay { alpha_intervals: 20 }, 19);
    assert!(
        loose.report_bits_total <= tight.report_bits_total,
        "α=20 reports ({}) should not exceed α=2 reports ({})",
        loose.report_bits_total,
        tight.report_bits_total
    );
}
