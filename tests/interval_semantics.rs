//! E9: the Figure-2 interval semantics (§2).
//!
//! * "The MU has to wait for the next invalidation report before
//!   answering a query";
//! * "If two or more queries of the same item are posed in an interval,
//!   they will all be answered at the same time in the next interval";
//! * "The answer to a query will reflect any updates to the item made
//!   during the interval in which the query was posed ... even if the
//!   query predates the update during the interval."

use sleepers_workaholics::client::{AtHandler, MobileUnit, MuConfig, ReplacementPolicy};
use sleepers_workaholics::server::{AtBuilder, Database, QueryAnswer, ReportBuilder, UplinkProcessor};
use sleepers_workaholics::sim::{MasterSeed, SimDuration, SimTime, StreamId};

fn mu_with_hotspot(hotspot: Vec<u64>, lambda: f64) -> MobileUnit {
    let mut rng = MasterSeed(0xE9).stream(StreamId::Queries { index: 0 });
    MobileUnit::new(
        MuConfig {
            id: 0,
            hotspot,
            query_rate_per_item: lambda,
            sleep_probability: 0.0,
            cache_capacity: None,
            replacement: ReplacementPolicy::Lru,
            replacement_window: SimDuration::ZERO,
            piggyback_hits: false,
            item_universe: None,
        },
        Box::new(AtHandler::new(SimDuration::from_secs(10.0))),
        &mut rng,
    )
}

#[test]
fn queries_wait_for_the_next_report() {
    let mut mu = mu_with_hotspot(vec![0, 1, 2], 1.0);
    let mut srng = MasterSeed(0xE9).stream(StreamId::Sleep { index: 0 });
    let mut qrng = MasterSeed(0xE9).stream(StreamId::Custom { tag: 5 });
    mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
    // Queries are pending but unanswered until the report arrives.
    assert!(mu.pending_len() > 0);
    assert_eq!(mu.stats().query_events(), 0, "no answers before the report");
    let report = sleepers_workaholics::wireless::FramePayload::AmnesicReport {
        report_ts_micros: 10_000_000,
        ids: vec![],
    };
    let out = mu.hear_report_and_answer(&report);
    assert_eq!(mu.pending_len(), 0, "all pending queries answered at T_i");
    assert!(mu.stats().query_events() > 0);
    assert!(!out.uplink_requests.is_empty(), "cold cache misses go uplink");
}

#[test]
fn same_item_queries_answered_once_per_interval() {
    // λ so high every item is queried many times per interval; each
    // distinct item is one query event and one uplink request.
    let mut mu = mu_with_hotspot(vec![7, 8], 50.0);
    let mut srng = MasterSeed(1).stream(StreamId::Sleep { index: 0 });
    let mut qrng = MasterSeed(1).stream(StreamId::Custom { tag: 6 });
    mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
    assert!(mu.stats().queries_posed > 100, "the burst really happened");
    let report = sleepers_workaholics::wireless::FramePayload::AmnesicReport {
        report_ts_micros: 10_000_000,
        ids: vec![],
    };
    let out = mu.hear_report_and_answer(&report);
    assert_eq!(out.uplink_requests.len(), 2, "one fetch per distinct item");
    assert_eq!(mu.stats().query_events(), 2);
}

#[test]
fn answer_reflects_update_made_after_the_query_in_the_same_interval() {
    // Query posed at t = 3; the item is updated at t = 7; the answer
    // (delivered after the report at t = 10) must carry the t = 7 value.
    let mut db = Database::new(10, |i| i * 100, SimDuration::from_secs(1e4));
    let mut uplink = UplinkProcessor::new();
    let mut at = AtBuilder::new(SimDuration::from_secs(10.0));

    let mut mu = mu_with_hotspot(vec![3], 0.2);
    let mut srng = MasterSeed(2).stream(StreamId::Sleep { index: 0 });
    let mut qrng = MasterSeed(2).stream(StreamId::Custom { tag: 7 });
    mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
    // Mid-interval update, after queries may have been posed.
    db.apply_update(3, 999_999, SimTime::from_secs(7.0));

    let payload = at.build(1, SimTime::from_secs(10.0), &db);
    let out = mu.hear_report_and_answer(&payload);
    if out.uplink_requests.is_empty() {
        // The Poisson draw posed no queries this interval — nothing to
        // assert (rare at λ·L = 2 but possible); the other tests cover
        // the mechanics.
        return;
    }
    let (item, _) = out.uplink_requests[0];
    assert_eq!(item, 3);
    let ans: QueryAnswer = uplink.answer(&db, item, SimTime::from_secs(10.0), None);
    assert_eq!(
        ans.value, 999_999,
        "the answer must reflect the intra-interval update even though \
         the query predates it"
    );
    mu.install_answer(ans);
    assert_eq!(mu.cache().peek(3).unwrap().value, 999_999);
}

#[test]
fn synchronous_latency_is_bounded_by_l() {
    // §2: "In case of synchronous caching, there is a guaranteed
    // latency due to the periodic nature of the synchronous broadcast."
    // Every query is answered at the closing report: latency ≤ L, and
    // Poisson arrivals make the mean ≈ L/2.
    use sleepers_workaholics::prelude::*;
    let mut params = ScenarioParams::scenario1();
    params.n_items = 500;
    params.lambda = 0.05;
    let params = params.with_s(0.2);
    let cfg = CellConfig::new(params)
        .with_clients(10)
        .with_hotspot_size(20)
        .with_seed(31);
    let mut sim = CellSimulation::new(cfg, Strategy::AmnesicTerminals).unwrap();
    sim.run(300).unwrap();
    let mut total_lat = 0.0;
    let mut total_q = 0u64;
    for idx in 0..sim.client_slots() {
        let s = sim.client_stats(idx);
        assert!(
            s.latency_max_secs <= params.latency_secs + 1e-9,
            "client {idx} saw latency {} > L",
            s.latency_max_secs
        );
        total_lat += s.latency_sum_secs;
        total_q += s.queries_posed;
    }
    let mean = total_lat / total_q.max(1) as f64;
    assert!(
        (mean - params.latency_secs / 2.0).abs() < 0.5,
        "mean latency {mean} should be ≈ L/2 = {}",
        params.latency_secs / 2.0
    );
}

#[test]
fn cache_hits_answer_with_report_validated_values() {
    // An item cached and revalidated by the report answers queries
    // locally — and the validity timestamp is the report's.
    let mut mu = mu_with_hotspot(vec![4], 0.5);
    let mut srng = MasterSeed(3).stream(StreamId::Sleep { index: 0 });
    let mut qrng = MasterSeed(3).stream(StreamId::Custom { tag: 8 });

    // Interval 1: fetch the item.
    mu.begin_interval(SimTime::ZERO, SimTime::from_secs(10.0), &mut srng, &mut qrng);
    let report1 = sleepers_workaholics::wireless::FramePayload::AmnesicReport {
        report_ts_micros: 10_000_000,
        ids: vec![],
    };
    let out = mu.hear_report_and_answer(&report1);
    for (item, _) in &out.uplink_requests {
        mu.install_answer(QueryAnswer {
            item: *item,
            value: 1234,
            timestamp: SimTime::from_secs(10.0),
        });
    }
    // Interval 2: the report revalidates; a repeat query hits locally.
    mu.begin_interval(SimTime::from_secs(10.0), SimTime::from_secs(20.0), &mut srng, &mut qrng);
    let report2 = sleepers_workaholics::wireless::FramePayload::AmnesicReport {
        report_ts_micros: 20_000_000,
        ids: vec![],
    };
    let _ = mu.hear_report_and_answer(&report2);
    if mu.stats().hit_events > 0 {
        let entry = mu.cache().peek(4).expect("still cached");
        assert_eq!(entry.value, 1234);
        assert_eq!(
            entry.timestamp,
            SimTime::from_secs(20.0),
            "hit validity is 'as of the last invalidation report'"
        );
    }
}
