//! Conservation laws of the simulation's accounting, driven through
//! randomized regimes by a deterministic seeded driver: whatever the
//! regime and strategy, the books must balance.

use sleepers_workaholics::prelude::*;
use sleepers_workaholics::sim::{MasterSeed, RngStream, StreamId};
use sleepers_workaholics::Strategy;

fn rng(tag: u64) -> RngStream {
    MasterSeed(0xACC0_0000_0000_0000 | tag).stream(StreamId::Custom { tag })
}

const STRATEGIES: [Strategy; 7] = [
    Strategy::BroadcastTimestamps,
    Strategy::AmnesicTerminals,
    Strategy::Signatures,
    Strategy::NoCache,
    Strategy::QuasiDelay { alpha_intervals: 5 },
    Strategy::GroupReports { groups: 50 },
    Strategy::HybridSig { hot_count: 30 },
];

fn run(strategy: Strategy, s: f64, mu: f64, seed: u64) -> (SimulationReport, u64) {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 300;
    params.mu = mu;
    params.k = 5;
    params.bandwidth_bps = 10_000_000; // accounting test, not capacity test
    let params = params.with_s(s);
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(12)
        .with_seed(seed);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
    let report = sim.run(60).expect("fits");
    let posed: u64 = (0..sim.client_slots())
        .map(|idx| sim.client_stats(idx).queries_posed)
        .sum();
    (report, posed)
}

/// Hits + misses = query events; events ≤ raw queries; every miss is
/// one uplink query frame and one answer frame.
#[test]
fn query_accounting_balances() {
    let mut rng = rng(1);
    for case in 0..20 {
        let strategy = STRATEGIES[rng.uniform_index(STRATEGIES.len() as u64) as usize];
        let s = rng.uniform() * 0.9;
        let mu = 1e-4 + rng.uniform() * (1e-2 - 1e-4);
        let seed = rng.uniform_index(10_000);
        let (report, posed) = run(strategy, s, mu, seed);
        assert_eq!(report.queries_posed, posed, "case {case} ({strategy:?})");
        assert_eq!(
            report.query_events(),
            report.hit_events + report.miss_events,
            "case {case} ({strategy:?})"
        );
        assert!(
            report.query_events() <= report.queries_posed,
            "case {case} ({strategy:?})"
        );
        // Each miss is exactly one query/answer exchange on the channel.
        let q_bits = report.miss_events * 512;
        assert_eq!(
            report.traffic.query_bits, q_bits,
            "case {case} ({strategy:?}): uplink bits"
        );
        assert_eq!(
            report.traffic.answer_bits, q_bits,
            "case {case} ({strategy:?}): answer bits"
        );
        assert_eq!(
            report.overflow_exchanges, 0,
            "case {case} ({strategy:?}): wide channel never saturates"
        );
    }
}

/// The per-interval report-bit ledger equals the channel's report
/// traffic (broadcast strategies) and stays zero for the stateful
/// baseline and NC.
#[test]
fn report_bit_ledgers_agree() {
    let mut rng = rng(2);
    for case in 0..20 {
        let strategy = STRATEGIES[rng.uniform_index(STRATEGIES.len() as u64) as usize];
        let s = rng.uniform() * 0.9;
        let seed = rng.uniform_index(10_000);
        let (report, _) = run(strategy, s, 1e-3, seed);
        assert_eq!(
            report.report_bits_total, report.traffic.report_bits,
            "case {case} ({strategy:?}): ledger vs channel"
        );
        assert_eq!(report.intervals, 60, "case {case} ({strategy:?})");
    }
}

/// Energy is conserved: every client accounts exactly one interval of
/// wall-clock per interval (rx + tx + doze + sleep seconds sum to L),
/// expressed through the default weight model.
#[test]
fn energy_never_negative_and_sleepers_spend_less() {
    let mut rng = rng(3);
    for case in 0..20 {
        let s = 0.1 + rng.uniform() * 0.8;
        let seed = rng.uniform_index(10_000);
        let (sleepy, _) = run(Strategy::AmnesicTerminals, s, 1e-3, seed);
        let (awake, _) = run(Strategy::AmnesicTerminals, 0.0, 1e-3, seed);
        assert!(sleepy.energy.total() >= 0.0, "case {case}");
        assert!(
            awake.energy.total() > sleepy.energy.total(),
            "case {case}: workaholics must burn more energy: {} vs {} (s={s}, seed={seed})",
            awake.energy.total(),
            sleepy.energy.total()
        );
    }
}

/// The stateful baseline's ledgers: no broadcast reports, only directed
/// invalidations + control messages.
#[test]
fn stateful_ledger_shape() {
    let (report, _) = run(Strategy::Stateful, 0.5, 2e-3, 7);
    assert_eq!(report.report_bits_total, 0);
    assert_eq!(report.traffic.report_bits, 0);
    assert!(report.traffic.invalidation_bits > 0);
    assert!(report.registration_messages > 0);
}
