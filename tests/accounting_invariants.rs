//! Conservation laws of the simulation's accounting, proptest-driven:
//! whatever the regime and strategy, the books must balance.

use proptest::prelude::*;
use sleepers_workaholics::prelude::*;
use sleepers_workaholics::Strategy;

fn strategies() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::BroadcastTimestamps),
        Just(Strategy::AmnesicTerminals),
        Just(Strategy::Signatures),
        Just(Strategy::NoCache),
        Just(Strategy::QuasiDelay { alpha_intervals: 5 }),
        Just(Strategy::GroupReports { groups: 50 }),
        Just(Strategy::HybridSig { hot_count: 30 }),
    ]
}

fn run(strategy: Strategy, s: f64, mu: f64, seed: u64) -> (SimulationReport, u64) {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 300;
    params.mu = mu;
    params.k = 5;
    params.bandwidth_bps = 10_000_000; // accounting test, not capacity test
    let params = params.with_s(s);
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(12)
        .with_seed(seed);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid");
    let report = sim.run(60).expect("fits");
    let posed: u64 = sim.clients().iter().map(|m| m.stats().queries_posed).sum();
    (report, posed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Hits + misses = query events; events ≤ raw queries; every miss
    /// is one uplink query frame and one answer frame.
    #[test]
    fn query_accounting_balances(
        strategy in strategies(),
        s in 0.0f64..0.9,
        mu in 1e-4f64..1e-2,
        seed in 0u64..10_000,
    ) {
        let (report, posed) = run(strategy, s, mu, seed);
        prop_assert_eq!(report.queries_posed, posed);
        prop_assert_eq!(
            report.query_events(),
            report.hit_events + report.miss_events
        );
        prop_assert!(report.query_events() <= report.queries_posed);
        // Each miss is exactly one query/answer exchange on the channel.
        let q_bits = report.miss_events * 512;
        prop_assert_eq!(report.traffic.query_bits, q_bits, "uplink bits");
        prop_assert_eq!(report.traffic.answer_bits, q_bits, "answer bits");
        prop_assert_eq!(report.overflow_exchanges, 0, "wide channel never saturates");
    }

    /// The per-interval report-bit ledger equals the channel's report
    /// traffic (broadcast strategies) and stays zero for the stateful
    /// baseline and NC.
    #[test]
    fn report_bit_ledgers_agree(
        strategy in strategies(),
        s in 0.0f64..0.9,
        seed in 0u64..10_000,
    ) {
        let (report, _) = run(strategy, s, 1e-3, seed);
        prop_assert_eq!(
            report.report_bits_total,
            report.traffic.report_bits,
            "ledger vs channel"
        );
        prop_assert_eq!(report.intervals, 60);
    }

    /// Energy is conserved: every client accounts exactly one interval
    /// of wall-clock per interval (rx + tx + doze + sleep seconds sum
    /// to L), expressed through the default weight model.
    #[test]
    fn energy_never_negative_and_sleepers_spend_less(
        s in 0.1f64..0.9,
        seed in 0u64..10_000,
    ) {
        let (sleepy, _) = run(Strategy::AmnesicTerminals, s, 1e-3, seed);
        let (awake, _) = run(Strategy::AmnesicTerminals, 0.0, 1e-3, seed);
        prop_assert!(sleepy.energy.total() >= 0.0);
        prop_assert!(
            awake.energy.total() > sleepy.energy.total(),
            "workaholics must burn more energy: {} vs {}",
            awake.energy.total(),
            sleepy.energy.total()
        );
    }
}

/// The stateful baseline's ledgers: no broadcast reports, only directed
/// invalidations + control messages.
#[test]
fn stateful_ledger_shape() {
    let (report, _) = run(Strategy::Stateful, 0.5, 2e-3, 7);
    assert_eq!(report.report_bits_total, 0);
    assert_eq!(report.traffic.report_bits, 0);
    assert!(report.traffic.invalidation_bits > 0);
    assert!(report.registration_messages > 0);
}
