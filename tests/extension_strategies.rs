//! Integration coverage for the extension strategies (§2 stateful
//! baseline, §10 hybrid and group reports) through the public API.

use sleepers_workaholics::prelude::*;
use sleepers_workaholics::workload::Popularity;
use sleepers_workaholics::Strategy;

fn params() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 800;
    p.mu = 1e-3;
    p.k = 10;
    p
}

fn run_with(
    strategy: Strategy,
    s: f64,
    popularity: Popularity,
    seed: u64,
) -> SimulationReport {
    let cfg = CellConfig::new(params().with_s(s))
        .with_clients(10)
        .with_hotspot_size(20)
        .with_popularity(popularity)
        .with_seed(seed);
    CellSimulation::new(cfg, strategy)
        .expect("valid config")
        .run_measured(80, 320)
        .expect("fits channel")
}

#[test]
fn group_reports_degenerate_to_at_when_groups_equal_items() {
    let at = run_with(Strategy::AmnesicTerminals, 0.3, Popularity::Uniform, 5);
    let gr = run_with(
        Strategy::GroupReports { groups: 800 },
        0.3,
        Popularity::Uniform,
        5,
    );
    assert_eq!(gr.strategy, "GR");
    assert_eq!(
        gr.hit_events, at.hit_events,
        "G = n group reports are exactly AT under the same seed"
    );
    assert_eq!(gr.miss_events, at.miss_events);
}

#[test]
fn coarser_groups_trade_hit_ratio_for_report_entries() {
    let fine = run_with(
        Strategy::GroupReports { groups: 800 },
        0.3,
        Popularity::Uniform,
        6,
    );
    let coarse = run_with(
        Strategy::GroupReports { groups: 20 },
        0.3,
        Popularity::Uniform,
        6,
    );
    assert!(
        coarse.hit_ratio() < fine.hit_ratio(),
        "collateral invalidation must cost hits: coarse {} vs fine {}",
        coarse.hit_ratio(),
        fine.hit_ratio()
    );
    assert!(
        coarse.report_bits_total <= fine.report_bits_total,
        "coarse groups cannot produce more report entries"
    );
    // More invalidations land on clients (innocent same-group members).
    assert!(coarse.items_invalidated > fine.items_invalidated);
}

#[test]
fn group_reports_never_validate_stale_entries() {
    // Group false alarms are safe in the over-invalidation direction
    // only; the history checker proves no stale entry survives.
    let cfg = CellConfig::new(params().with_s(0.4))
        .with_clients(8)
        .with_hotspot_size(15)
        .with_seed(9)
        .with_safety_checking();
    let mut sim = CellSimulation::new(cfg, Strategy::GroupReports { groups: 40 }).unwrap();
    let report = sim.run(200).unwrap();
    assert!(report.safety.entries_checked > 0);
    assert_eq!(report.safety.violations, 0);
}

#[test]
fn hybrid_interpolates_between_sig_and_at() {
    // Growing the hot set moves the hybrid hit ratio from SIG's toward
    // AT's under workaholic Zipf queries (where AT is the precision
    // ceiling and SIG pays superset false alarms at d ≈ f).
    let zipf = Popularity::Zipf { theta: 1.0 };
    let sig = run_with(Strategy::Signatures, 0.0, zipf, 11);
    let at = run_with(Strategy::AmnesicTerminals, 0.0, zipf, 11);
    let hyb_small = run_with(Strategy::HybridSig { hot_count: 10 }, 0.0, zipf, 11);
    let hyb_large = run_with(Strategy::HybridSig { hot_count: 300 }, 0.0, zipf, 11);
    assert!(
        hyb_small.hit_ratio() >= sig.hit_ratio() - 0.02,
        "small hot set ≈ SIG: {} vs {}",
        hyb_small.hit_ratio(),
        sig.hit_ratio()
    );
    assert!(
        hyb_large.hit_ratio() > hyb_small.hit_ratio(),
        "more hot items, more precision"
    );
    assert!(
        hyb_large.hit_ratio() <= at.hit_ratio() + 0.02,
        "AT is the precision ceiling"
    );
}

#[test]
fn stateful_message_cost_grows_with_population_at_fixed_broadcast_cost() {
    let run_n = |clients: usize, strategy: Strategy| {
        let cfg = CellConfig::new(params().with_s(0.0))
            .with_clients(clients)
            .with_hotspot_size(20)
            .with_seed(13);
        CellSimulation::new(cfg, strategy)
            .unwrap()
            .run_measured(50, 200)
            .unwrap()
    };
    let at_small = run_n(4, Strategy::AmnesicTerminals);
    let at_large = run_n(16, Strategy::AmnesicTerminals);
    assert_eq!(
        at_small.report_bits_total, at_large.report_bits_total,
        "broadcast cost is population-independent"
    );
    let sf_small = run_n(4, Strategy::Stateful);
    let sf_large = run_n(16, Strategy::Stateful);
    assert!(
        sf_large.traffic.invalidation_bits > sf_small.traffic.invalidation_bits * 3,
        "directed traffic must scale with holders: {} vs {}",
        sf_large.traffic.invalidation_bits,
        sf_small.traffic.invalidation_bits
    );
}

#[test]
fn all_extension_strategies_are_deterministic() {
    for strategy in [
        Strategy::Stateful,
        Strategy::HybridSig { hot_count: 50 },
        Strategy::GroupReports { groups: 100 },
        Strategy::QuasiDelay { alpha_intervals: 5 },
    ] {
        let a = run_with(strategy, 0.3, Popularity::Uniform, 21);
        let b = run_with(strategy, 0.3, Popularity::Uniform, 21);
        assert_eq!(a.hit_events, b.hit_events, "{strategy:?}");
        assert_eq!(a.report_bits_total, b.report_bits_total, "{strategy:?}");
    }
}
