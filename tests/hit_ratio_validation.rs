//! E11: the simulator validates the paper's closed-form hit ratios.
//!
//! * simulated `h_AT` matches Eq. 41;
//! * simulated `h_SIG` matches Eq. 43 (with `P_nf ≈ 1` at these
//!   parameters);
//! * simulated `h_TS` lands within (statistical slack of) the
//!   Appendix-1 bounds;
//! * the asymptotic orderings of §5 hold in simulation.

use sleepers_workaholics::prelude::*;

fn base_params() -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.n_items = 1_000;
    p.k = 10;
    p
}

fn simulate_h(params: ScenarioParams, strategy: Strategy, seed: u64) -> f64 {
    let cfg = CellConfig::new(params)
        .with_clients(14)
        .with_hotspot_size(25)
        .with_seed(seed);
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid config");
    sim.run_measured(150, 600).expect("in budget").hit_ratio()
}

#[test]
fn h_at_matches_eq41_across_sleep_levels() {
    for (i, s) in [0.0, 0.3, 0.6].into_iter().enumerate() {
        let params = base_params().with_s(s);
        let sim = simulate_h(params, Strategy::AmnesicTerminals, 100 + i as u64);
        let model = h_at(&params);
        assert!(
            (sim - model).abs() < 0.04,
            "s={s}: simulated h_at {sim} vs Eq.41 {model}"
        );
    }
}

#[test]
fn h_at_matches_eq41_across_update_rates() {
    for (i, mu) in [1e-4, 1e-3, 5e-3].into_iter().enumerate() {
        let params = base_params().with_s(0.2).with_mu(mu);
        let sim = simulate_h(params, Strategy::AmnesicTerminals, 200 + i as u64);
        let model = h_at(&params);
        assert!(
            (sim - model).abs() < 0.04,
            "mu={mu}: simulated h_at {sim} vs Eq.41 {model}"
        );
    }
}

#[test]
fn h_ts_within_appendix1_bounds() {
    for (i, s) in [0.2, 0.5, 0.8].into_iter().enumerate() {
        let params = base_params().with_s(s).with_mu(1e-3);
        let sim = simulate_h(params, Strategy::BroadcastTimestamps, 300 + i as u64);
        let bounds = h_ts_bounds(&params);
        let slack = 0.05;
        assert!(
            sim >= bounds.lower - slack && sim <= bounds.upper + slack,
            "s={s}: simulated h_ts {sim} outside bounds [{}, {}]",
            bounds.lower,
            bounds.upper
        );
    }
}

#[test]
fn h_sig_matches_eq43_when_f_is_sized_right() {
    // Eq. 43's constant P_nf presumes the number of actually-differing
    // items stays within the design parameter f. At Scenario 1's μ
    // (0.1 updates/interval on n = 1000) that holds even through naps.
    for (i, s) in [0.0, 0.4, 0.7].into_iter().enumerate() {
        let params = base_params().with_s(s).with_mu(1e-4);
        let sim = simulate_h(params, Strategy::Signatures, 400 + i as u64);
        let p_nf = sleepers_workaholics::analysis::throughput::sig_p_nf(&params);
        let model = h_sig(&params, p_nf);
        assert!(
            (sim - model).abs() < 0.05,
            "s={s}: simulated h_sig {sim} vs Eq.43 {model}"
        );
    }
}

#[test]
fn h_sig_degrades_when_f_is_undersized() {
    // The superset effect (§3.3): when sleepers accumulate more
    // differing items than f, valid cached items land in "too many"
    // unmatching subsets and are falsely dropped — safe, but the
    // measured hit ratio falls visibly below Eq. 43's optimistic
    // constant-P_nf value. (That is why the paper raises f to 20/200 in
    // the update-intensive Scenarios 3/4.) This pins the effect down as
    // a reproduction finding; EXPERIMENTS.md discusses it.
    let params = base_params().with_s(0.4).with_mu(5e-4); // ≈5 updates/interval vs f = 10
    let sim = simulate_h(params, Strategy::Signatures, 450);
    let p_nf = sleepers_workaholics::analysis::throughput::sig_p_nf(&params);
    let model = h_sig(&params, p_nf);
    assert!(
        sim < model - 0.05,
        "undersized f should visibly depress h_sig: sim {sim} vs model {model}"
    );
    // Doubling f restores the agreement.
    let mut fat = params;
    fat.f = 40;
    let sim_fat = simulate_h(fat, Strategy::Signatures, 451);
    let p_nf_fat = sleepers_workaholics::analysis::throughput::sig_p_nf(&fat);
    let model_fat = h_sig(&fat, p_nf_fat);
    assert!(
        (sim_fat - model_fat).abs() < 0.06,
        "f = 40 should restore Eq.43 agreement: sim {sim_fat} vs model {model_fat}"
    );
}

#[test]
fn simulated_ordering_matches_section5() {
    // Sleepers at low update rates: h_TS ≥ h_SIG ≥ h_AT (TS and SIG
    // survive naps; AT forgets).
    let params = base_params().with_s(0.5).with_mu(2e-4);
    let h_ts = simulate_h(params, Strategy::BroadcastTimestamps, 501);
    let h_sig = simulate_h(params, Strategy::Signatures, 502);
    let h_at = simulate_h(params, Strategy::AmnesicTerminals, 503);
    assert!(
        h_ts > h_at + 0.05,
        "sleepers: TS {h_ts} must clearly beat AT {h_at}"
    );
    assert!(
        h_sig > h_at + 0.05,
        "sleepers: SIG {h_sig} must clearly beat AT {h_at}"
    );
}

#[test]
fn workaholics_all_strategies_converge() {
    // §5 table: as s → 0 all three hit ratios approach the same value.
    let params = base_params().with_s(0.0).with_mu(5e-4);
    let h_ts = simulate_h(params, Strategy::BroadcastTimestamps, 601);
    let h_sig = simulate_h(params, Strategy::Signatures, 602);
    let h_at = simulate_h(params, Strategy::AmnesicTerminals, 603);
    assert!(
        (h_ts - h_at).abs() < 0.03 && (h_sig - h_at).abs() < 0.03,
        "workaholics: h_ts {h_ts}, h_at {h_at}, h_sig {h_sig} should converge"
    );
}

#[test]
fn mhr_bounds_every_strategy() {
    // No strategy can beat the idealized stateful server's MHR = λ/(λ+μ)
    // by more than sampling noise.
    let params = base_params().with_s(0.0).with_mu(1e-3);
    let bound = mhr(params.lambda, params.mu);
    for (i, strategy) in [
        Strategy::BroadcastTimestamps,
        Strategy::AmnesicTerminals,
        Strategy::Signatures,
    ]
    .into_iter()
    .enumerate()
    {
        let sim = simulate_h(params, strategy, 700 + i as u64);
        assert!(
            sim <= bound + 0.03,
            "{strategy:?}: simulated h {sim} exceeds MHR {bound}"
        );
    }
}
