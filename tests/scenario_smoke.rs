//! Scenario smoke tests: every §6 scenario runs end-to-end through the
//! simulator (scaled n where the paper uses 10⁶), and the headline
//! qualitative claims of the figures hold in simulation, not just in
//! the closed forms.

use sleepers_workaholics::prelude::*;

fn scaled(params: ScenarioParams) -> ScenarioParams {
    let mut p = params;
    if p.n_items > 2_000 {
        p.n_items = 2_000;
    }
    p
}

fn run(params: ScenarioParams, strategy: Strategy, seed: u64) -> Result<SimulationReport, SimulationError> {
    let cfg = CellConfig::new(params)
        .with_clients(8)
        .with_hotspot_size(20)
        .with_seed(seed);
    CellSimulation::new(cfg, strategy)?.run_measured(40, 160)
}

#[test]
fn every_scenario_runs_where_usable() {
    for (fig, name, base) in ScenarioParams::all_scenarios() {
        let params = scaled(base);
        for strategy in [
            Strategy::BroadcastTimestamps,
            Strategy::AmnesicTerminals,
            Strategy::Signatures,
            Strategy::NoCache,
        ] {
            let analytic_usable = match strategy {
                Strategy::BroadcastTimestamps => throughput_ts(&params).is_some(),
                Strategy::AmnesicTerminals => throughput_at(&params).is_some(),
                Strategy::Signatures => throughput_sig(&params).is_some(),
                _ => true,
            };
            match run(params, strategy, fig as u64) {
                Ok(report) => {
                    assert!(
                        analytic_usable,
                        "{name} fig{fig}: {} ran but the model says its report \
                         cannot fit",
                        strategy.name()
                    );
                    assert_eq!(report.intervals, 160);
                }
                Err(SimulationError::ReportTooLarge { .. }) => {
                    assert!(
                        !analytic_usable,
                        "{name} fig{fig}: {} rejected but the model says it fits",
                        strategy.name()
                    );
                }
                Err(e) => panic!("{name}: {e}"),
            }
        }
    }
}

#[test]
fn scenario3_ts_unusable_at_full_scale_too() {
    // Even without scaling, Scenario 3 (n = 1000) rejects TS: the
    // defining §6 observation.
    let params = ScenarioParams::scenario3();
    let err = run(params, Strategy::BroadcastTimestamps, 1).unwrap_err();
    assert!(matches!(err, SimulationError::ReportTooLarge { .. }));
}

#[test]
fn workaholics_prefer_at_in_simulation() {
    // Figure 3 at s = 0: AT's measured effectiveness beats SIG's
    // (shortest report, same hit ratio) — §5's workaholic conclusion.
    //
    // Paired comparison: identical seed means identical sleep, query,
    // and update streams, so the only differences are strategy-driven
    // (AT misses exactly the updated hotspot items; SIG misses those
    // plus false alarms, and pays a 10-kbit report vs AT's ~10 bits).
    // Unpaired seeds would drown in noise — at h ≈ 0.998, effectiveness
    // divides by a miss count of a few dozen events.
    let params = ScenarioParams::scenario1().with_s(0.0);
    let at = run(params, Strategy::AmnesicTerminals, 2).unwrap();
    let sig = run(params, Strategy::Signatures, 2).unwrap();
    assert!(
        at.effectiveness() > sig.effectiveness(),
        "AT {} should beat SIG {} for workaholics",
        at.effectiveness(),
        sig.effectiveness()
    );
    assert!(
        sig.miss_events >= at.miss_events,
        "paired run: SIG misses ({}) can only add false alarms to AT's ({})",
        sig.miss_events,
        at.miss_events
    );
}

#[test]
fn sleepers_prefer_sig_in_simulation() {
    // Figure 3 mid-range: SIG's measured effectiveness beats AT's.
    let params = ScenarioParams::scenario1().with_s(0.5);
    let at = run(params, Strategy::AmnesicTerminals, 4).unwrap();
    let sig = run(params, Strategy::Signatures, 5).unwrap();
    assert!(
        sig.effectiveness() > at.effectiveness(),
        "SIG {} should beat AT {} for sleepers",
        sig.effectiveness(),
        at.effectiveness()
    );
}

#[test]
fn update_intensive_scenario3_at_dominates_sig() {
    // Figure 5: "AT dominates SIG for the entire range" (until NC wins).
    let params = scaled(ScenarioParams::scenario3()).with_s(0.3);
    let at = run(params, Strategy::AmnesicTerminals, 6).unwrap();
    let sig = run(params, Strategy::Signatures, 7).unwrap();
    assert!(
        at.effectiveness() >= sig.effectiveness(),
        "AT {} vs SIG {} in update-intensive Scenario 3",
        at.effectiveness(),
        sig.effectiveness()
    );
}

#[test]
fn no_cache_effectiveness_is_tiny_in_scenario1() {
    // §6: "the effectiveness of the no-caching strategy remains very
    // close to 0 for the entire interval" (updates are rare, so T_max
    // is enormous).
    let params = ScenarioParams::scenario1().with_s(0.4);
    let nc = run(params, Strategy::NoCache, 8).unwrap();
    assert!(
        nc.effectiveness() < 0.01,
        "NC effectiveness {} should be negligible",
        nc.effectiveness()
    );
}

#[test]
fn deterministic_across_runs() {
    let params = scaled(ScenarioParams::scenario2()).with_s(0.3);
    let a = run(params, Strategy::Signatures, 42).unwrap();
    let b = run(params, Strategy::Signatures, 42).unwrap();
    assert_eq!(a.hit_events, b.hit_events);
    assert_eq!(a.miss_events, b.miss_events);
    assert_eq!(a.report_bits_total, b.report_bits_total);
}
