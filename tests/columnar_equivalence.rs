//! The columnar-fleet oracle: the struct-of-arrays client backend must
//! be observably indistinguishable from the boxed-`MobileUnit` fleet —
//! same report, same per-client stats, same safety and fault counters —
//! for every eligible strategy, at any sweep worker count, with and
//! without faults armed. "Indistinguishable" is checked the blunt way:
//! the full `Debug` rendering of the simulation report and of every
//! client's stats must match byte for byte.

use sleepers_workaholics::prelude::*;

const ELIGIBLE: &[Strategy] = &[
    Strategy::BroadcastTimestamps,
    Strategy::AmnesicTerminals,
    Strategy::Signatures,
    Strategy::NoCache,
    Strategy::HybridSig { hot_count: 30 },
    Strategy::GroupReports { groups: 20 },
];

fn base_config(n_clients: usize, s: f64, seed: u64) -> CellConfig {
    let mut params = ScenarioParams::scenario1();
    params.n_items = 400;
    params.lambda = 0.04;
    params.bandwidth_bps = 40_000; // headroom: equivalence, not capacity
    let params = params.with_s(s);
    CellConfig::new(params)
        .with_clients(n_clients)
        .with_hotspot_size(24)
        .with_seed(seed)
}

/// Runs a config+strategy on one fleet backend and renders everything
/// observable.
fn fingerprint(cfg: CellConfig, strategy: Strategy, intervals: u64) -> (String, Vec<String>) {
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid config");
    sim.run(intervals).expect("report fits");
    let per_client = (0..sim.client_slots())
        .map(|idx| format!("{:?}", sim.client_stats(idx)))
        .collect();
    (format!("{:?}", sim.report()), per_client)
}

#[test]
fn columnar_matches_units_for_every_eligible_strategy() {
    for &strategy in ELIGIBLE {
        let units = fingerprint(
            base_config(40, 0.4, 77).with_fleet(FleetBackend::Units),
            strategy,
            80,
        );
        let columnar = fingerprint(
            base_config(40, 0.4, 77).with_fleet(FleetBackend::Columnar),
            strategy,
            80,
        );
        assert_eq!(
            units.0, columnar.0,
            "{} report diverged between fleet backends",
            strategy.name()
        );
        assert_eq!(
            units.1, columnar.1,
            "{} per-client stats diverged between fleet backends",
            strategy.name()
        );
    }
}

#[test]
fn columnar_matches_units_under_faults() {
    // Loss + corruption + drift + flaky uplinks: the full fault
    // gauntlet must hit both backends identically (fates are decided
    // before the sweep, from per-client streams).
    let plan = FaultPlan::none()
        .with_loss(LossModel::burst(0.05, 0.4, 0.8))
        .with_corruption(0.02)
        .with_uplink(UplinkFaults {
            p_fail: 0.1,
            max_attempts: 3,
            backoff_base_bits: 64,
        })
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.3,
            jitter_secs: 0.5,
        });
    for &strategy in &[Strategy::BroadcastTimestamps, Strategy::Signatures] {
        let units = fingerprint(
            base_config(40, 0.4, 99)
                .with_faults(plan)
                .with_fleet(FleetBackend::Units),
            strategy,
            80,
        );
        let columnar = fingerprint(
            base_config(40, 0.4, 99)
                .with_faults(plan)
                .with_fleet(FleetBackend::Columnar),
            strategy,
            80,
        );
        assert_eq!(
            units.0, columnar.0,
            "{} faulted report diverged between fleet backends",
            strategy.name()
        );
        assert_eq!(units.1, columnar.1, "{} faulted stats diverged", strategy.name());
    }
}

#[test]
fn sweep_thread_count_is_invisible() {
    // Big enough that the parallel path actually engages (the sweep
    // fans out at ≥ 256 listening clients), on both backends.
    for backend in [FleetBackend::Units, FleetBackend::Columnar] {
        let mut baseline: Option<(String, Vec<String>)> = None;
        for threads in [1usize, 2, 8] {
            let got = fingerprint(
                base_config(500, 0.2, 31)
                    .with_fleet(backend)
                    .with_sweep_threads(threads),
                Strategy::BroadcastTimestamps,
                40,
            );
            match &baseline {
                None => baseline = Some(got),
                Some(want) => {
                    assert_eq!(
                        want.0, got.0,
                        "{backend:?} report changed at {threads} sweep threads"
                    );
                    assert_eq!(
                        want.1, got.1,
                        "{backend:?} per-client stats changed at {threads} sweep threads"
                    );
                }
            }
        }
    }
}

/// Runs a config+strategy with the recorder armed and renders every
/// deterministic observation artifact (trace, series, counters, value
/// histograms) as one string.
#[cfg(feature = "observe")]
fn observe_digest(cfg: CellConfig, strategy: Strategy, intervals: u64) -> String {
    let mut sim = CellSimulation::new(cfg.with_observe("equiv"), strategy).expect("valid config");
    sim.run(intervals).expect("report fits");
    sim.report()
        .observe
        .expect("observing run snapshots")
        .deterministic_digest()
}

/// The telemetry oracle: with the recorder armed, the columnar fleet
/// must emit the byte-identical deterministic observation digest the
/// boxed fleet emits — same counters, same per-interval series, same
/// event trace, same value histograms — for every eligible strategy.
#[cfg(feature = "observe")]
#[test]
fn observe_snapshots_match_across_backends() {
    for &strategy in ELIGIBLE {
        let units = observe_digest(
            base_config(40, 0.4, 77).with_fleet(FleetBackend::Units),
            strategy,
            80,
        );
        let columnar = observe_digest(
            base_config(40, 0.4, 77).with_fleet(FleetBackend::Columnar),
            strategy,
            80,
        );
        assert_eq!(
            units, columnar,
            "{} observe digest diverged between fleet backends",
            strategy.name()
        );
    }
}

/// Same oracle under the full fault gauntlet: the fault event family
/// (lost/corrupted/drift counters, report_missed events, drop-on-gap
/// accounting) must be backend-invariant too.
#[cfg(all(feature = "observe", feature = "faults"))]
#[test]
fn observe_snapshots_match_across_backends_under_faults() {
    let plan = FaultPlan::none()
        .with_loss(LossModel::burst(0.05, 0.4, 0.8))
        .with_corruption(0.02)
        .with_uplink(UplinkFaults {
            p_fail: 0.1,
            max_attempts: 3,
            backoff_base_bits: 64,
        })
        .with_drift(ClockDrift {
            rate_secs_per_interval: 0.3,
            jitter_secs: 0.5,
        });
    for &strategy in &[Strategy::BroadcastTimestamps, Strategy::Signatures] {
        let units = observe_digest(
            base_config(40, 0.4, 99)
                .with_faults(plan)
                .with_fleet(FleetBackend::Units),
            strategy,
            80,
        );
        let columnar = observe_digest(
            base_config(40, 0.4, 99)
                .with_faults(plan)
                .with_fleet(FleetBackend::Columnar),
            strategy,
            80,
        );
        assert_eq!(
            units, columnar,
            "{} faulted observe digest diverged between fleet backends",
            strategy.name()
        );
    }
}

/// The digest must also be invariant to the sweep worker count, on both
/// backends, with the parallel path actually engaged (≥ 256 listeners).
#[cfg(feature = "observe")]
#[test]
fn observe_snapshots_ignore_sweep_threads() {
    for backend in [FleetBackend::Units, FleetBackend::Columnar] {
        let mut baseline: Option<String> = None;
        for threads in [1usize, 2, 8] {
            let got = observe_digest(
                base_config(500, 0.2, 31)
                    .with_fleet(backend)
                    .with_sweep_threads(threads),
                Strategy::BroadcastTimestamps,
                40,
            );
            match &baseline {
                None => baseline = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "{backend:?} observe digest changed at {threads} sweep threads"
                ),
            }
        }
    }
}

#[test]
fn eligible_configs_default_to_columnar() {
    for &strategy in ELIGIBLE {
        let sim = CellSimulation::new(base_config(8, 0.3, 5), strategy).unwrap();
        assert!(
            sim.is_columnar(),
            "{} should auto-select the columnar fleet",
            strategy.name()
        );
    }
}

#[test]
fn ineligible_configs_stay_on_boxed_units() {
    // Driver-wired strategies.
    for strategy in [
        Strategy::Stateful,
        Strategy::QuasiDelay { alpha_intervals: 3 },
        Strategy::AdaptiveTs {
            method: FeedbackMethod::Method2,
            eval_period: 10,
            step: 1,
        },
    ] {
        let sim = CellSimulation::new(base_config(8, 0.3, 5), strategy).unwrap();
        assert!(!sim.is_columnar(), "{} must stay boxed", strategy.name());
    }
    // Bounded caches are columnar-eligible: the replacement clocks ride
    // along as extra columns.
    let sim = CellSimulation::new(
        base_config(8, 0.3, 5).with_cache_capacity(10),
        Strategy::BroadcastTimestamps,
    )
    .unwrap();
    assert!(
        sim.is_columnar(),
        "bounded caches should auto-select the columnar fleet"
    );
    // Forcing the columnar backend onto an ineligible config is a
    // loud configuration error that names each disqualifier, not a
    // silent fallback or a bare settings dump.
    let err = CellSimulation::new(
        base_config(8, 0.3, 5)
            .with_piggybacking()
            .with_fleet(FleetBackend::Columnar),
        Strategy::BroadcastTimestamps,
    );
    match err {
        Err(SimulationError::InvalidConfig(msg)) => assert!(
            msg.contains("piggybacked hit histories"),
            "the error must name the disqualifying reason, got: {msg}"
        ),
        Ok(_) => panic!("expected InvalidConfig, got a running simulation"),
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
    }
    let err = CellSimulation::new(
        base_config(8, 0.3, 5).with_fleet(FleetBackend::Columnar),
        Strategy::Stateful,
    );
    match err {
        Err(SimulationError::InvalidConfig(msg)) => assert!(
            msg.contains("per-client feedback"),
            "the error must name the strategy's disqualifier, got: {msg}"
        ),
        Ok(_) => panic!("expected InvalidConfig, got a running simulation"),
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
    }
}

/// The tentpole oracle: with a finite capacity armed, the columnar
/// capacity columns must replay the boxed cache's clock/eviction
/// machinery byte for byte — for every replacement policy, at every
/// sweep worker count the suite pins (`SW_THREADS ∈ {1, 2, 8}` via
/// `with_sweep_threads`), across the static strategy family. Capacity
/// is set well below the hotspot so replacement actually churns.
#[test]
fn bounded_caches_match_across_backends_per_policy() {
    for &policy in &[
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::WindowAge,
    ] {
        for &strategy in &[
            Strategy::BroadcastTimestamps,
            Strategy::AmnesicTerminals,
            Strategy::Signatures,
        ] {
            for threads in [1usize, 2, 8] {
                let cfg = |backend| {
                    base_config(40, 0.4, 77)
                        .with_cache_capacity(8)
                        .with_replacement(policy)
                        .with_fleet(backend)
                        .with_sweep_threads(threads)
                };
                let units = fingerprint(cfg(FleetBackend::Units), strategy, 80);
                let columnar = fingerprint(cfg(FleetBackend::Columnar), strategy, 80);
                assert_eq!(
                    units.0,
                    columnar.0,
                    "{} report diverged between fleet backends under {} replacement \
                     at {threads} sweep threads",
                    strategy.name(),
                    policy.name()
                );
                assert_eq!(
                    units.1,
                    columnar.1,
                    "{} per-client stats diverged under {} replacement at {threads} \
                     sweep threads",
                    strategy.name(),
                    policy.name()
                );
            }
        }
    }
}

/// Bounded caches under the parallel sweep for real: enough listeners
/// that the chunked path engages (≥ 256), with capacity churn on.
#[test]
fn bounded_caches_ignore_sweep_threads_at_scale() {
    for backend in [FleetBackend::Units, FleetBackend::Columnar] {
        let mut baseline: Option<(String, Vec<String>)> = None;
        for threads in [1usize, 2, 8] {
            let got = fingerprint(
                base_config(500, 0.2, 31)
                    .with_cache_capacity(8)
                    .with_replacement(ReplacementPolicy::WindowAge)
                    .with_fleet(backend)
                    .with_sweep_threads(threads),
                Strategy::BroadcastTimestamps,
                40,
            );
            match &baseline {
                None => baseline = Some(got),
                Some(want) => {
                    assert_eq!(
                        want.0, got.0,
                        "{backend:?} bounded report changed at {threads} sweep threads"
                    );
                    assert_eq!(
                        want.1, got.1,
                        "{backend:?} bounded stats changed at {threads} sweep threads"
                    );
                }
            }
        }
    }
}
