//! E10: the AT ≡ asynchronous-broadcast equivalence claim (§3.2).
//!
//! "Notice that, in both cases, the total number of messages downloaded
//! by the server is identical; the AT simply groups them together in
//! the periodic invalidation. Also, in both cases, the client loses his
//! cache entirely upon disconnection. Therefore, AT is really
//! equivalent to the asynchronous broadcast of invalidation reports."
//!
//! We drive the same update stream into both mechanisms and check the
//! two halves of the claim.

use sleepers_workaholics::server::{
    AsyncBroadcaster, AtBuilder, Database, ReportBuilder, UpdateEngine,
};
use sleepers_workaholics::sim::{MasterSeed, SimDuration, SimTime, StreamId};
use sleepers_workaholics::wireless::FramePayload;

fn setup(n: u64, mu: f64) -> (Database, UpdateEngine, sleepers_workaholics::sim::RngStream) {
    let mut rng = MasterSeed(0xE10).stream(StreamId::Updates);
    let db = Database::new(n, |i| i, SimDuration::from_secs(1e5));
    let engine = UpdateEngine::new(n, mu, &mut rng);
    (db, engine, rng)
}

/// Per update, the async scheme sends exactly one message; AT groups
/// the same ids into its periodic report (deduplicated per interval,
/// which §3.2's footnote notes "may lead to saving in terms of total
/// number of packets" — the ids covered are identical).
#[test]
fn same_invalidations_per_interval() {
    let latency = SimDuration::from_secs(10.0);
    let (mut db, mut engine, mut rng) = setup(500, 2e-3);
    let mut at = AtBuilder::new(latency);
    let mut async_bcast = AsyncBroadcaster::new();

    for i in 1..=200u64 {
        let from = SimTime::from_secs((i - 1) as f64 * 10.0);
        let to = SimTime::from_secs(i as f64 * 10.0);
        let recs = engine.advance(&mut db, from, to, &mut rng);
        for rec in &recs {
            async_bcast.on_update(rec);
        }
        // The async messages this interval, deduplicated and sorted,
        // must equal the AT report's id list exactly.
        let mut async_ids = async_bcast.take_ids();
        let async_raw = async_ids.len();
        async_ids.sort_unstable();
        async_ids.dedup();
        match at.build(i, to, &db) {
            FramePayload::AmnesicReport { ids, .. } => {
                assert_eq!(ids, async_ids, "interval {i} diverged");
                assert!(async_raw >= ids.len());
            }
            other => panic!("unexpected payload {other:?}"),
        }
        db.prune_log(to);
    }
}

/// Total messages: the async count equals the raw update count, the AT
/// entries equal the per-interval-distinct count — identical when no
/// item is updated twice in one interval, never more.
#[test]
fn total_message_accounting() {
    let latency = SimDuration::from_secs(10.0);
    let (mut db, mut engine, mut rng) = setup(2_000, 1e-3);
    let mut at = AtBuilder::new(latency);
    let mut async_bcast = AsyncBroadcaster::new();
    let mut at_entries = 0usize;
    let mut updates = 0usize;

    for i in 1..=300u64 {
        let from = SimTime::from_secs((i - 1) as f64 * 10.0);
        let to = SimTime::from_secs(i as f64 * 10.0);
        let recs = engine.advance(&mut db, from, to, &mut rng);
        updates += recs.len();
        for rec in &recs {
            async_bcast.on_update(rec);
        }
        if let FramePayload::AmnesicReport { ids, .. } = at.build(i, to, &db) {
            at_entries += ids.len();
        }
        db.prune_log(to);
    }

    assert_eq!(async_bcast.messages_sent() as usize, updates);
    assert!(at_entries <= updates);
    // With n·μ·L = 20 expected updates/interval over n = 2000 items,
    // same-interval repeats are rare: the two counts agree within 2%.
    let ratio = at_entries as f64 / updates.max(1) as f64;
    assert!(
        ratio > 0.98,
        "AT entries {at_entries} vs async messages {updates} (ratio {ratio})"
    );
}

/// Both schemes lose the cache entirely on disconnection: an AT client
/// that missed one report drops everything — exactly what an async
/// client that slept through individual messages must also do.
#[test]
fn both_lose_cache_on_disconnection() {
    use sleepers_workaholics::client::{AtHandler, Cache, ReportHandler};
    let latency = SimDuration::from_secs(10.0);
    let mut handler = AtHandler::new(latency);
    let mut cache = Cache::unbounded();
    cache.insert(1, 10, SimTime::from_secs(10.0));
    cache.insert(2, 20, SimTime::from_secs(10.0));
    // Missed the report at 20; hears the one at 30.
    let report = FramePayload::AmnesicReport {
        report_ts_micros: 30_000_000,
        ids: vec![],
    };
    let out = handler.process(&mut cache, &report, Some(SimTime::from_secs(10.0)));
    assert!(out.dropped_all);
    assert!(cache.is_empty());
}
