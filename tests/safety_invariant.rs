//! E-invariant 1: the no-stale-reads safety contract (§2).
//!
//! "Our schemes will only allow false alarm errors and will always
//! correctly inform the client if his copy is invalid." For TS and AT
//! this must hold absolutely, across arbitrary parameter combinations —
//! a deterministic seeded driver pushes the whole simulator through
//! randomized regimes. SIG is probabilistic; its violation rate is
//! bounded statistically.

use sleepers_workaholics::prelude::*;
use sleepers_workaholics::sim::{MasterSeed, RngStream, StreamId};
use sleepers_workaholics::Strategy;

fn rng(tag: u64) -> RngStream {
    MasterSeed(0x5AFE_0000_0000_0000 | tag).stream(StreamId::Custom { tag })
}

fn scenario(lambda: f64, mu: f64, s: f64, k: u32, n: u64) -> ScenarioParams {
    let mut p = ScenarioParams::scenario1();
    p.lambda = lambda;
    p.mu = mu;
    p.k = k;
    p.n_items = n;
    // Safety is about correctness, not capacity: a wide channel keeps
    // randomized μ/k combinations from tripping the report-size guard.
    p.bandwidth_bps = 100_000_000;
    p.with_s(s)
}

fn run_safety(params: ScenarioParams, strategy: Strategy, seed: u64, intervals: u64) -> (u64, u64) {
    let cfg = CellConfig::new(params)
        .with_clients(6)
        .with_hotspot_size(15.min(params.n_items as usize))
        .with_seed(seed)
        .with_safety_checking();
    let mut sim = CellSimulation::new(cfg, strategy).expect("valid config");
    let report = sim.run(intervals).expect("in-budget scenario");
    (report.safety.violations, report.safety.entries_checked)
}

fn in_range(rng: &mut RngStream, lo: f64, hi: f64) -> f64 {
    lo + rng.uniform() * (hi - lo)
}

/// TS never validates a stale cache entry, whatever the regime.
#[test]
fn ts_never_stale() {
    let mut rng = rng(1);
    for case in 0..24 {
        let lambda = in_range(&mut rng, 0.01, 0.5);
        let mu = in_range(&mut rng, 1e-5, 5e-2);
        let s = in_range(&mut rng, 0.0, 1.0);
        let k = 1 + rng.uniform_index(19) as u32;
        let seed = rng.next_u64();
        let params = scenario(lambda, mu, s, k, 300);
        let (violations, checked) = run_safety(params, Strategy::BroadcastTimestamps, seed, 60);
        assert_eq!(
            violations, 0,
            "case {case}: TS stale entries out of {checked} checked \
             (λ={lambda}, μ={mu}, s={s}, k={k}, seed={seed})"
        );
    }
}

/// AT never validates a stale cache entry, whatever the regime.
#[test]
fn at_never_stale() {
    let mut rng = rng(2);
    for case in 0..24 {
        let lambda = in_range(&mut rng, 0.01, 0.5);
        let mu = in_range(&mut rng, 1e-5, 5e-2);
        let s = in_range(&mut rng, 0.0, 1.0);
        let seed = rng.next_u64();
        let params = scenario(lambda, mu, s, 5, 300);
        let (violations, checked) = run_safety(params, Strategy::AmnesicTerminals, seed, 60);
        assert_eq!(
            violations, 0,
            "case {case}: AT stale entries out of {checked} checked \
             (λ={lambda}, μ={mu}, s={s}, seed={seed})"
        );
    }
}

/// The adaptive-TS per-item gap rule preserves safety too.
#[test]
fn adaptive_ts_never_stale() {
    let mut rng = rng(3);
    for case in 0..24 {
        let lambda = in_range(&mut rng, 0.01, 0.3);
        let mu = in_range(&mut rng, 1e-4, 2e-2);
        let s = in_range(&mut rng, 0.0, 0.9);
        let seed = rng.next_u64();
        let params = scenario(lambda, mu, s, 4, 300);
        let strategy = Strategy::AdaptiveTs {
            method: FeedbackMethod::Method1,
            eval_period: 8,
            step: 2,
        };
        let (violations, checked) = run_safety(params, strategy, seed, 80);
        assert_eq!(
            violations, 0,
            "case {case}: adaptive TS stale entries out of {checked} checked \
             (λ={lambda}, μ={mu}, s={s}, seed={seed})"
        );
    }
}

/// SIG's stale-validation rate stays within its probabilistic budget
/// (signature collisions at g = 16 are ~2⁻¹⁶; the measured rate must be
/// far below 1%).
#[test]
fn sig_stale_rate_is_bounded() {
    let params = scenario(0.05, 1e-3, 0.4, 10, 400);
    let mut total_violations = 0;
    let mut total_checked = 0;
    for seed in 0..4u64 {
        let (v, c) = run_safety(params, Strategy::Signatures, seed * 7 + 1, 150);
        total_violations += v;
        total_checked += c;
    }
    let rate = total_violations as f64 / total_checked.max(1) as f64;
    assert!(
        rate < 0.005,
        "SIG stale-validation rate {rate} (of {total_checked}) exceeds the probabilistic budget"
    );
}

/// The quasi-delay condition allows *bounded lag*, never fabricated
/// values: every cached value must equal the server value at some time
/// within α of the read — which the per-entry timestamp discipline
/// already certifies (the checker validates value-at-timestamp).
#[test]
fn quasi_delay_lag_is_honest() {
    let params = scenario(0.05, 2e-3, 0.3, 5, 300);
    let (violations, checked) = run_safety(
        params,
        Strategy::QuasiDelay { alpha_intervals: 5 },
        99,
        150,
    );
    assert!(checked > 0);
    assert_eq!(
        violations, 0,
        "quasi-delay entries must be honest about their validity timestamp"
    );
}
