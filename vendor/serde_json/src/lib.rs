//! Vendored, offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] data
//! model. Covers the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`json!`], [`Value`], [`Map`].

pub use serde::{Error, Map, Value};

/// Builds a [`Value`] from JSON-ish syntax. Supports `null`, flat
/// `{ "key": expr, ... }` objects, `[expr, ...]` arrays, and bare
/// expressions (anything implementing `serde::Serialize`); nest by
/// calling `json!` inside an expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(String::from($key), ::serde::Serialize::to_value(&$value)); )*
        $crate::Value::Object(m)
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $(::serde::Serialize::to_value(&$value)),* ])
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest-roundtrip Display keeps f64 values exact.
        out.push_str(&format!("{n}"));
        // `{}` prints integral floats without a fraction ("1"), which is
        // valid JSON either way.
    } else {
        out.push_str("null"); // like serde_json: non-finite → null
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    m.insert(key, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("dangling escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::new(format!("bad \\u escape: {e}")))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad codepoint".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b"+-.eE".contains(&b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u32, "b": [1.5f64, 2.5], "c": "x" });
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(json!(null), Value::Null);
        let arr = json!([1u8, 2u8]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({ "pi": std::f64::consts::PI, "neg": -1e-9f64, "s": "a\"b\\c\nd" });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str(r#"{"a": [ {"b": null}, true, false, "" ]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
    }
}
