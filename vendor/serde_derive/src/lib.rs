//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates `Serialize`/`Deserialize` impls over the value data model
//! (`serde::Value`). Supports the shapes this workspace uses: structs
//! with named fields, and enums whose variants are unit or have named
//! fields (externally tagged, like real serde's default). Parsing is
//! hand-rolled over `proc_macro::TokenStream` — no syn/quote, because
//! the build must work with an empty cargo registry.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum; each variant is (name, named fields — empty = unit).
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(crate)`), starting at `i`; returns the new index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses `name: Type, ...` named-field lists, returning field names.
/// Commas inside groups or angle brackets do not split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Expect ':' then the type; consume until a comma at angle depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    // Find the brace group (skips generics, which this stub rejects by
    // producing code that won't compile against them — none exist here).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("serde_derive: no body on {name}"));

    if kind == "struct" {
        Shape::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else if kind == "enum" {
        let tokens: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        let mut j = 0;
        while j < tokens.len() {
            j = skip_attrs_and_vis(&tokens, j);
            let Some(TokenTree::Ident(v)) = tokens.get(j) else {
                break;
            };
            let vname = v.to_string();
            j += 1;
            let mut vfields = Vec::new();
            if let Some(TokenTree::Group(g)) = tokens.get(j) {
                match g.delimiter() {
                    Delimiter::Brace => {
                        vfields = parse_named_fields(g.stream());
                        j += 1;
                    }
                    Delimiter::Parenthesis => {
                        panic!("serde_derive: tuple variants unsupported ({vname})")
                    }
                    _ => {}
                }
            }
            variants.push((vname, vfields));
            // Skip to past the trailing comma, if any.
            if let Some(TokenTree::Punct(p)) = tokens.get(j) {
                if p.as_char() == ',' {
                    j += 1;
                }
            }
        }
        Shape::Enum { name, variants }
    } else {
        panic!("serde_derive: cannot derive for `{kind}`");
    }
}

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n"
            ));
            for f in &fields {
                out.push_str(&format!(
                    "m.insert(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(m)\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for (v, fields) in &variants {
                if fields.is_empty() {
                    out.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(String::from(\"{v}\")),\n"
                    ));
                } else {
                    let pat = fields.join(", ");
                    out.push_str(&format!("{name}::{v} {{ {pat} }} => {{\n"));
                    out.push_str("let mut inner = ::serde::Map::new();\n");
                    for f in fields {
                        out.push_str(&format!(
                            "inner.insert(String::from(\"{f}\"), ::serde::Serialize::to_value({f}));\n"
                        ));
                    }
                    out.push_str(&format!(
                        "let mut m = ::serde::Map::new();\n\
                         m.insert(String::from(\"{v}\"), ::serde::Value::Object(inner));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    ));
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().expect("serde_derive: generated code parses")
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 const NULL: ::serde::Value = ::serde::Value::Null;\n\
                 let m = v.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n"
            ));
            for f in &fields {
                out.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(m.get(\"{f}\").unwrap_or(&NULL))?,\n"
                ));
            }
            out.push_str("})\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 const NULL: ::serde::Value = ::serde::Value::Null;\n\
                 let _ = &NULL;\n"
            ));
            out.push_str("if let Some(s) = v.as_str() {\nmatch s {\n");
            for (v, fields) in &variants {
                if fields.is_empty() {
                    out.push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n"));
                }
            }
            out.push_str("_ => {}\n}\n}\n");
            out.push_str(&format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n"
            ));
            for (v, fields) in &variants {
                if fields.is_empty() {
                    continue;
                }
                out.push_str(&format!(
                    "if let Some(inner) = m.get(\"{v}\") {{\n\
                     let im = inner.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for variant {v}\"))?;\n\
                     return Ok({name}::{v} {{\n"
                ));
                for f in fields {
                    out.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(im.get(\"{f}\").unwrap_or(&NULL))?,\n"
                    ));
                }
                out.push_str("});\n}\n");
            }
            out.push_str(&format!(
                "Err(::serde::Error::new(\"unknown variant of {name}\"))\n}}\n}}\n"
            ));
        }
    }
    out.parse().expect("serde_derive: generated code parses")
}
