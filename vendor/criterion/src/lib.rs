//! Vendored, offline stand-in for `criterion`.
//!
//! A wall-clock micro-bench harness exposing the subset of criterion's
//! API the workspace benches use (`bench_function`, groups,
//! `iter`/`iter_batched`, `Throughput`, the `criterion_group!` /
//! `criterion_main!` macros). Each benchmark runs a short warm-up then
//! samples until a time budget (`SW_BENCH_MS`, default 80 ms per
//! benchmark) or an iteration cap is reached, and prints
//! mean/min ns-per-iteration to stdout. No statistics beyond that —
//! the point is trend tracking and smoke coverage without crates-io.

use std::time::{Duration, Instant};

/// How inputs are batched in [`Bencher::iter_batched`] (accepted for
/// API compatibility; every batch is size 1 here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn budget() -> Duration {
    let ms = std::env::var("SW_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(80);
    Duration::from_millis(ms.max(1))
}

/// One measured sample set.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

/// Runs `f` under the harness timing loop and returns the sample.
/// (Also used directly by the workspace's BENCH_report generator.)
pub fn run_timed<R>(mut f: impl FnMut() -> R) -> Sample {
    // Warm-up: two untimed calls.
    std::hint::black_box(f());
    std::hint::black_box(f());
    let budget = budget();
    let start = Instant::now();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    while iters < 3 || (start.elapsed() < budget && iters < 100_000) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        if dt < min {
            min = dt;
        }
        iters += 1;
    }
    Sample {
        mean_ns: total.as_nanos() as f64 / iters as f64,
        min_ns: min.as_nanos() as f64,
        iters,
    }
}

fn report(name: &str, sample: Sample, throughput: Option<Throughput>) {
    let per = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
            format!("  ({:.1} ns/unit)", sample.mean_ns / n as f64)
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} mean {:>12.1} ns  min {:>12.1} ns  ({} iters){per}",
        sample.mean_ns, sample.min_ns, sample.iters
    );
}

/// Per-benchmark driver handed to the closure.
pub struct Bencher {
    throughput: Option<Throughput>,
    name: String,
}

impl Bencher {
    /// Times `f` repeatedly.
    pub fn iter<R>(&mut self, f: impl FnMut() -> R) {
        let sample = run_timed(f);
        report(&self.name, sample, self.throughput);
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up.
        std::hint::black_box(routine(setup()));
        let budget = budget();
        let start = Instant::now();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        while iters < 3 || (start.elapsed() < budget && iters < 100_000) {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            if dt < min {
                min = dt;
            }
            iters += 1;
        }
        report(
            &self.name,
            Sample {
                mean_ns: total.as_nanos() as f64 / iters as f64,
                min_ns: min.as_nanos() as f64,
                iters,
            },
            self.throughput,
        );
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            throughput: None,
            name: id.into(),
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the harness is time-budgeted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            throughput: self.throughput,
            name: format!("{}/{}", self.name, id.into()),
        };
        f(&mut b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function set, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
