//! Vendored, offline stand-in for the `serde` facade.
//!
//! The workspace builds in environments with no crates-io access, so
//! this crate provides the subset of serde's surface the repo actually
//! uses — `Serialize`/`Deserialize` traits plus derive macros — over a
//! simple self-describing [`Value`] data model instead of serde's
//! visitor machinery. `serde_json` (also vendored) renders and parses
//! that model. The derive macros live in the sibling `serde_derive`
//! crate and are re-exported here under the usual names, so
//! `#[derive(Serialize, Deserialize)]` and `use serde::{...}` work
//! unchanged at every call site.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Key → value map used by [`Value::Object`] (sorted, like serde_json's
/// default `Map`).
pub type Map = BTreeMap<String, Value>;

/// A self-describing JSON-style value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics are carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------

macro_rules! ser_de_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_de_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, found {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, found {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| Error::new(format!("expected 2-element array, found {v:?}")))?;
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let pair = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
    }
}
