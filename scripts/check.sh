#!/usr/bin/env sh
# Repo health check: build, full test suite, lints, bench smoke.
# Everything runs offline against the vendored registry.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace (release)"
cargo test --workspace --release -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace (release, --features observe)"
cargo test --workspace --release -q --features observe

echo "==> cargo clippy --workspace -D warnings (--features observe)"
cargo clippy --workspace --all-targets --features observe -- -D warnings

echo "==> trace_run smoke (figure 3, quick settings, observed)"
SW_FAST=1 cargo run --release -q -p sw-experiments --features observe --bin trace_run -- 3 >/dev/null

echo "==> cargo test --workspace (release, --features faults)"
cargo test --workspace --release -q --features faults

echo "==> cargo clippy --workspace -D warnings (--features faults)"
cargo clippy --workspace --all-targets --features faults -- -D warnings

echo "==> fault-matrix smoke (fig_loss: loss 0/0.05/0.2 x TS/AT/SIG + burst)"
SW_FAST=1 cargo run --release -q -p sw-experiments --features faults --bin fig_loss >/dev/null

echo "==> bench smoke (criterion --test mode)"
cargo bench -p sw-bench --bench hot_paths -- --test

echo "==> bench smoke A/B: faults compiled in must not touch the hot paths"
cargo bench -p sw-bench --bench hot_paths --features faults -- --test

echo "All checks passed."
