#!/usr/bin/env sh
# Repo health check: build, full test suite, lints, bench smoke.
# Everything runs offline against the vendored registry.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace (release)"
cargo test --workspace --release -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (criterion --test mode)"
cargo bench -p sw-bench --bench hot_paths -- --test

echo "All checks passed."
