#!/usr/bin/env sh
# Repo health check: build, full test suite, lints, bench smoke.
# Everything runs offline against the vendored registry.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace (release)"
cargo test --workspace --release -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> query plane leg (sw-query unit/property tests + clippy, default features)"
cargo test --release -q -p sw-query
cargo clippy -p sw-query --all-targets -- -D warnings

echo "==> query conformance leg (sim/live lockstep incl. query verdicts + txn outcomes)"
cargo test --release -q -p sw-live --test conformance query

echo "==> capacity leg (sw-capacity unit tests + clippy, default features)"
cargo test --release -q -p sw-capacity
cargo clippy -p sw-capacity --all-targets -- -D warnings

echo "==> capacity conformance leg (bounded caches: live vs columnar per policy)"
cargo test --release -q -p sw-live --test conformance bounded

echo "==> capacity equivalence leg (boxed vs columnar, bounded, SW_THREADS 1/2/8)"
cargo test --release -q -p sleepers-workaholics --test columnar_equivalence bounded

echo "==> cargo test --workspace (release, --features observe)"
cargo test --workspace --release -q --features observe

echo "==> cargo clippy --workspace -D warnings (--features observe)"
cargo clippy --workspace --all-targets --features observe -- -D warnings

echo "==> query plane leg (core integration with observe counters armed)"
cargo test --release -q -p sleepers --features observe query_plane

echo "==> capacity leg (bounded equivalence + mesh coop with observe armed)"
cargo test --release -q -p sleepers-workaholics --features observe --test columnar_equivalence bounded
cargo test --release -q -p sw-mesh --features observe coop

echo "==> trace_run smoke (figure 3, quick settings, observed)"
SW_FAST=1 cargo run --release -q -p sw-experiments --features observe --bin trace_run -- 3 >/dev/null

echo "==> trace_run smoke (live session, lockstep, merged server+client trace)"
SW_FAST=1 cargo run --release -q -p sw-experiments --features observe --bin trace_run -- live >/dev/null

echo "==> live smoke (sw-serve + metrics plane, one sw-mu round, sw-top --once, clean shutdown)"
live_addr_file=$(mktemp)
live_metrics_file=$(mktemp)
rm -f "$live_addr_file" "$live_metrics_file"
./target/release/sw-serve --port 0 --clients 1 --intervals 30 --interval-ms 20 \
    --announce "$live_addr_file" \
    --metrics-port 0 --metrics-announce "$live_metrics_file" --flight 16 >/dev/null &
live_serve_pid=$!
live_tries=0
while [ ! -s "$live_addr_file" ] || [ ! -s "$live_metrics_file" ]; do
    live_tries=$((live_tries + 1))
    if [ "$live_tries" -gt 100 ]; then
        echo "sw-serve never announced its addresses" >&2
        kill "$live_serve_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
./target/release/sw-mu --server "$(cat "$live_addr_file")" --index 0 --clients 1 >/dev/null &
live_mu_pid=$!
live_metrics_addr=$(cat "$live_metrics_file")
# The ops plane must answer while the session runs: health, a
# well-formed Prometheus page, and one sw-top frame.
if command -v curl >/dev/null 2>&1; then
    [ "$(curl -sf "http://$live_metrics_addr/healthz")" = "ok" ] || {
        echo "metrics /healthz did not answer ok" >&2; exit 1; }
    curl -sf "http://$live_metrics_addr/metrics" | grep -q '^sw_interval' || {
        echo "metrics /metrics is missing sw_interval" >&2; exit 1; }
else
    echo "   curl not found; probing via sw-top only"
fi
./target/release/sw-top --metrics "$live_metrics_addr" --once | grep -q 'sw-top' || {
    echo "sw-top --once produced no dashboard frame" >&2; exit 1; }
wait "$live_mu_pid"
wait "$live_serve_pid"
rm -f "$live_addr_file" "$live_metrics_file"

echo "==> failover smoke (two-node sw-ha fleet, kill -9 primary mid-run, zero-stale takeover)"
ha_dir=$(mktemp -d)
./target/release/sw-serve --port 0 --clients 2 --intervals 120 --interval-ms 25 \
    --ha-node 0 --ha-announce "$ha_dir/node0" --ha-peer "$ha_dir/node1" \
    --announce "$ha_dir/addr0" >/dev/null 2>&1 &
ha_pid0=$!
./target/release/sw-serve --port 0 --clients 2 --intervals 120 --interval-ms 25 \
    --ha-node 1 --ha-announce "$ha_dir/node1" --ha-peer "$ha_dir/node0" \
    --metrics-port 0 --metrics-announce "$ha_dir/metrics1" >"$ha_dir/serve1.log" 2>&1 &
ha_pid1=$!
ha_tries=0
while [ ! -s "$ha_dir/addr0" ] || [ ! -s "$ha_dir/metrics1" ]; do
    ha_tries=$((ha_tries + 1))
    if [ "$ha_tries" -gt 100 ]; then
        echo "sw-ha fleet never announced its addresses" >&2
        kill "$ha_pid0" "$ha_pid1" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
ha_addr0=$(cat "$ha_dir/addr0")
ha_addr1=$(awk '{print $2}' "$ha_dir/node1")
ha_metrics1=$(cat "$ha_dir/metrics1")
./target/release/sw-mu --server "$ha_addr0,$ha_addr1" --index 0 --clients 2 >/dev/null &
ha_mu0=$!
./target/release/sw-mu --server "$ha_addr0,$ha_addr1" --index 1 --clients 2 >/dev/null &
ha_mu1=$!
# Let the primary air ~40 of 120 intervals, then kill it the hard way.
sleep 1
kill -9 "$ha_pid0" 2>/dev/null || true
# The takeover must be observable *during* the run: the replica's
# epoch gauge bumps to 2 and its role flips to PRIMARY.
ha_took=""
ha_tries=0
while [ "$ha_tries" -lt 40 ]; do
    if ./target/release/sw-top --metrics "$ha_metrics1" --once 2>/dev/null \
        | grep -q 'epoch 2 PRIMARY'; then
        ha_took=yes
        break
    fi
    ha_tries=$((ha_tries + 1))
    sleep 0.1
done
[ "$ha_took" = yes ] || {
    echo "replica never took over (no epoch-2 PRIMARY on its metrics page)" >&2
    kill "$ha_pid1" "$ha_mu0" "$ha_mu1" 2>/dev/null || true
    exit 1
}
# Everyone still standing must complete the session cleanly.
wait "$ha_mu0"
wait "$ha_mu1"
wait "$ha_pid1"
grep -q 'took over at interval' "$ha_dir/serve1.log" || {
    echo "survivor finished without reporting its takeover" >&2; exit 1; }
rm -rf "$ha_dir"

echo "==> failover acceptance (paced zero-stale audit + lockstep crash conformance)"
cargo test --release -q -p sw-ha --features faults --test failover

echo "==> cargo test --workspace (release, --features faults)"
cargo test --workspace --release -q --features faults

echo "==> query plane leg (invalidation soundness under the fault gauntlet)"
cargo test --release -q -p sleepers --features faults query_plane

echo "==> capacity leg (eviction safety soak under the fault gauntlet)"
cargo test --release -q -p sw-experiments --features faults --test fault_soak eviction

echo "==> cargo clippy --workspace -D warnings (--features faults)"
cargo clippy --workspace --all-targets --features faults -- -D warnings

echo "==> cargo test --workspace (release, --features observe,faults)"
# The combined build pins the observe-side SIG counters of the mesh
# fault soak (fault_soak.rs) on top of both single-feature configs.
cargo test --workspace --release -q --features observe,faults

echo "==> fault-matrix smoke (fig_loss: loss 0/0.05/0.2 x TS/AT/SIG + burst)"
SW_FAST=1 cargo run --release -q -p sw-experiments --features faults --bin fig_loss >/dev/null

echo "==> mesh smoke (fig_mesh: migration-rate sweep, paper-consistent ordering asserted)"
SW_FAST=1 cargo run --release -q -p sw-experiments --bin fig_mesh >/dev/null

echo "==> query smoke (fig_query: query hit ratio / uplink bits / abort rate vs s)"
SW_FAST=1 cargo run --release -q -p sw-experiments --bin fig_query >/dev/null

echo "==> capacity smoke (fig_capacity: capacity x replacement x strategy x s + coop mesh leg)"
SW_FAST=1 cargo run --release -q -p sw-experiments --bin fig_capacity >/dev/null

echo "==> figure artifact A/B guard: mesh seed domain must not move results/fig3.json"
cargo test --release -q -p sw-experiments --test fig3_regression -- --ignored

echo "==> bench smoke (criterion --test mode)"
cargo bench -p sw-bench --bench hot_paths -- --test

echo "==> bench smoke A/B: faults compiled in must not touch the hot paths"
cargo bench -p sw-bench --bench hot_paths --features faults -- --test

echo "==> hot-path zero-cost guard: observe+faults compiled in must stay within 5%"
# Build the probe twice — feature-off, then with observe+faults armed
# at compile time (both disabled at runtime) — and interleave rounds.
# The best-of-N comparison makes the A/B a hard guard on the
# zero-cost disabled path instead of an eyeballed smoke.
cargo build --release -q -p sw-experiments --bin hot_guard
hot_off_bin=$(mktemp)
cp target/release/hot_guard "$hot_off_bin"
chmod +x "$hot_off_bin"
cargo build --release -q -p sw-experiments --features observe,faults --bin hot_guard
hot_off=""
hot_on=""
for _ in 1 2 3 4 5; do
    hot_off="$hot_off $("$hot_off_bin")"
    hot_on="$hot_on $(target/release/hot_guard)"
done
rm -f "$hot_off_bin"
echo "   feature-off rounds (us/interval):$hot_off"
echo "   feature-on  rounds (us/interval):$hot_on"
awk -v off="$hot_off" -v on="$hot_on" 'BEGIN {
    split(off, a, " "); split(on, b, " ");
    min_off = a[1]; for (i in a) if (a[i] + 0 < min_off) min_off = a[i] + 0;
    min_on = b[1]; for (i in b) if (b[i] + 0 < min_on) min_on = b[i] + 0;
    ratio = min_on / min_off;
    printf "   best feature-off %.1f us, best feature-on %.1f us (ratio %.3f)\n",
        min_off, min_on, ratio;
    if (ratio > 1.05) {
        printf "HOT-PATH GUARD FAILED: features compiled in cost %.1f%% (> 5%%)\n",
            (ratio - 1) * 100 > "/dev/stderr";
        exit 1;
    }
}'

echo "==> bench gate: current driver must beat the legacy loop at s=0.5"
# Regenerates the s=0.5 comparison (BENCH_gate.json) on identical
# random streams and fails if single_thread_speedup drops below 1.0x,
# so the PR 3-5 per-interval regression cannot silently recur.
SW_BENCH_GATE=1 cargo run --release -q -p sw-experiments --bin bench_report >/dev/null

echo "==> bench smoke: mesh_step (sharded envelope vs single-cell baseline)"
# The A/B guard for the mesh PR: hot_paths above exercises only the
# single-cell driver and must stay green untouched; mesh_step measures
# what the sharded envelope and the migration barrier add on top.
cargo bench -p sw-bench --bench mesh_step -- --test

echo "All checks passed."
